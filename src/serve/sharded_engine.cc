#include "serve/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "tensor/arena.h"
#include "tensor/ops.h"

namespace apan {
namespace serve {

using core::InteractionRecord;
using core::MailDelivery;
using core::MailPropagator;
using core::PartialPropagation;

ShardedEngine::ShardedEngine(core::ApanModel* model, Options options)
    : model_(model),
      options_(options),
      partition_(options.partition != nullptr
                     ? options.partition
                     : graph::NodePartition::BuildDefault(
                           model != nullptr ? model->config().num_nodes : 1,
                           options.num_shards)),
      router_(partition_),
      graph_(partition_),
      transport_(options_.transport ? options_.transport()
                                    : std::make_unique<InProcessTransport>()),
      encode_pool_(options.encode_threads > 0
                       ? options.encode_threads
                       : static_cast<size_t>(options.num_shards)),
      shard_down_(static_cast<size_t>(options.num_shards)) {
  APAN_CHECK(model != nullptr);
  APAN_CHECK_MSG(partition_->num_shards == options_.num_shards &&
                     partition_->num_nodes() == model->config().num_nodes,
                 "Options::partition must cover the model's node space with "
                 "Options::num_shards shards");
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  // Resolve metric handles once. Per-shard writers get one cell per
  // shard; transport lanes get one cell per directed (from, to) pair.
  stage_metrics_ = options_.stage_metrics;
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  const int ns = options_.num_shards;
  ins_.batches_ingested = registry_->GetCounter("serve.batches_ingested");
  ins_.batches_propagated =
      registry_->GetCounter("serve.batches_propagated", ns);
  ins_.batches_rejected = registry_->GetCounter("serve.batches_rejected");
  ins_.mails_routed = registry_->GetCounter("serve.mails_routed", ns);
  ins_.mails_cross_shard =
      registry_->GetCounter("serve.mails_cross_shard", ns);
  ins_.mails_dropped = registry_->GetCounter("serve.mails_dropped");
  ins_.frontier_requests =
      registry_->GetCounter("serve.frontier_requests", ns);
  ins_.frontier_nodes_forwarded =
      registry_->GetCounter("serve.frontier_nodes_forwarded", ns);
  ins_.duplicates_dropped =
      registry_->GetCounter("serve.duplicates_dropped", ns);
  ins_.events_homed = registry_->GetCounter("serve.events_homed", ns);
  ins_.events_shed = registry_->GetCounter("serve.events_shed", ns);
  ins_.sends_shed = registry_->GetCounter("serve.sends_shed", ns);
  ins_.job_depth = registry_->GetGauge("serve.job_queue_depth", ns);
  ins_.job_highwater = registry_->GetGauge("serve.job_queue_highwater", ns);
  ins_.mail_depth = registry_->GetGauge("serve.mail_queue_depth", ns);
  ins_.mail_highwater =
      registry_->GetGauge("serve.mail_queue_highwater", ns);
  ins_.stage_sync = registry_->GetHistogram("stage.sync");
  ins_.stage_merge = registry_->GetHistogram("stage.merge", ns);
  ins_.stage_encode = registry_->GetHistogram("stage.encode", ns);
  ins_.stage_append = registry_->GetHistogram("stage.append", ns);
  ins_.stage_sample = registry_->GetHistogram("stage.sample", ns);
  ins_.stage_frontier_wait =
      registry_->GetHistogram("stage.frontier_wait", ns);
  ins_.stage_frontier_serve =
      registry_->GetHistogram("stage.frontier_serve", ns);
  ins_.stage_propagate = registry_->GetHistogram("stage.propagate", ns);
  ins_.stage_route = registry_->GetHistogram("stage.route", ns);
  ins_.stage_idle = registry_->GetHistogram("stage.idle", ns);
  ins_.stage_finalize = registry_->GetHistogram("stage.finalize", ns);
  APAN_CHECK_MSG(
      model->config().sampling == core::PropagationSampling::kMostRecent,
      "ShardedEngine requires kMostRecent sampling: kUniform draws from a "
      "shared RNG, which shard-concurrent sampling would race on");
  // The one and only model mutation: eval mode, before the engine runs.
  // From here on the model is weights-only to the engine (const access);
  // every mutable byte the engine serves lives in the per-shard stores.
  model->SetTraining(false);
  // Partition the node space into disjoint per-shard state stores. The
  // ownership index is partition_ — the SAME instance the graph slices
  // reference — so owner + local row per node is stored once for the
  // whole engine; per-store or per-plane copies would scale index memory
  // O(num_shards * num_nodes).
  const core::ApanConfig& config = model->config();
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->store = std::make_unique<core::NodeStateStore>(
        partition_, s, config.mailbox_slots, config.embedding_dim);
    shard->accepted_request.assign(
        static_cast<size_t>(options_.num_shards), ExpansionKey{-1, 0});
    shard->outbound.resize(static_cast<size_t>(options_.num_shards));
    shards_.push_back(std::move(shard));
  }
  // Per-lane transport accounting: one counter cell per directed
  // (from, to) shard pair, attributed inside the transport itself (only
  // it knows frame sizes and syscall counts).
  TransportMetrics tmetrics;
  tmetrics.num_shards = ns;
  tmetrics.frames = registry_->GetCounter("transport.frames", ns * ns);
  tmetrics.bytes = registry_->GetCounter("transport.bytes", ns * ns);
  tmetrics.syscalls = registry_->GetCounter("transport.syscalls", ns * ns);
  tmetrics.lane_reconnects =
      registry_->GetCounter("transport.lane_reconnects", ns * ns);
  tmetrics.send_failures =
      registry_->GetCounter("transport.send_failures", ns * ns);
  transport_->SetMetrics(tmetrics);
  // The transport comes up before the workers: a worker's very first
  // expansion may Send.
  const Status transport_up = transport_->Start(
      options_.num_shards, [this](int to_shard, ShardMessage message) {
        EnqueueMessage(to_shard, std::move(message));
      });
  APAN_CHECK_MSG(transport_up.ok(), transport_up.ToString());
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_[static_cast<size_t>(s)]->worker =
        std::thread([this, s] { WorkerLoop(s); });
  }
}

ShardedEngine::~ShardedEngine() { Shutdown(); }

Result<ShardedEngine::InferenceResult> ShardedEngine::InferBatch(
    const std::vector<graph::Event>& events) {
  if (events.empty()) {
    return Status::InvalidArgument("InferBatch on empty batch");
  }
  util::MutexLock infer_lock(infer_mu_);
  if (shutdown_) return Status::Cancelled("engine is shut down");

  InferenceResult result;
  Stopwatch watch;
  const int num_shards = options_.num_shards;
  const int64_t d = model_->config().embedding_dim;
  std::vector<InteractionRecord> records;
  {
    // ---- Synchronous link: shard-parallel encoding over local state. ----
    APAN_TRACE_SPAN("sync");
    tensor::NoGradGuard no_grad;
    // Caller-thread arena for the decode leg below (gathers, link
    // scoring); each encode task opens its own pool-thread scope. Arena
    // tensors never cross threads — tasks copy rows into `emb`.
    tensor::ArenaScope arena_scope;

    // Deduplicate nodes: each node's embedding is generated once per batch
    // (paper §3.2), then split the unique set by owner shard.
    std::vector<graph::NodeId> unique_nodes;
    std::unordered_map<graph::NodeId, size_t> index_of;
    auto intern = [&](graph::NodeId v) {
      auto [it, inserted] = index_of.try_emplace(v, unique_nodes.size());
      if (inserted) unique_nodes.push_back(v);
      return it->second;
    };
    std::vector<int64_t> src_rows, dst_rows;
    src_rows.reserve(events.size());
    dst_rows.reserve(events.size());
    for (const auto& e : events) {
      src_rows.push_back(static_cast<int64_t>(intern(e.src)));
      dst_rows.push_back(static_cast<int64_t>(intern(e.dst)));
    }

    // Split the unique set by owner shard, remembering each row's index
    // in the first-appearance order so tasks can scatter results.
    std::vector<std::vector<graph::NodeId>> shard_nodes(
        static_cast<size_t>(num_shards));
    std::vector<std::vector<size_t>> shard_unique(
        static_cast<size_t>(num_shards));
    for (size_t u = 0; u < unique_nodes.size(); ++u) {
      const int s = router_.ShardOf(unique_nodes[u]);
      shard_nodes[static_cast<size_t>(s)].push_back(unique_nodes[u]);
      shard_unique[static_cast<size_t>(s)].push_back(u);
    }

    // Encode each shard's slice concurrently against that shard's own
    // state store — replicated weights over partitioned state, so the
    // only cache lines an encode touches are the shard's private rows.
    // Each task copies its rows straight into the shared flat matrix
    // (disjoint offsets) and drops its tensors before returning: encode
    // intermediates live and die on the pool thread that owns the arena.
    std::vector<float> emb(unique_nodes.size() * static_cast<size_t>(d));
    const auto encode_shard = [this, d, &shard_nodes, &shard_unique,
                               &emb](int s) {
      tensor::NoGradGuard task_no_grad;
      // Pool threads open their own per-batch arena; on the caller thread
      // this nests the already-open batch arena, which is a no-op.
      tensor::ArenaScope task_arena;
      APAN_TRACE_SPAN("encode");
      Stopwatch encode_watch;
      const auto& nodes = shard_nodes[static_cast<size_t>(s)];
      const auto& unique_rows = shard_unique[static_cast<size_t>(s)];
      core::ApanEncoder::Output out;
      {
        Shard& shard = *shards_[static_cast<size_t>(s)];
        util::MutexLock state_lock(shard.state_mu);
        out = model_->weights().EncodeNodes(*shard.store, nodes);
      }
      const float* rows = out.embeddings.data();
      for (size_t r = 0; r < nodes.size(); ++r) {
        std::copy_n(rows + static_cast<int64_t>(r) * d, d,
                    emb.data() + unique_rows[r] * static_cast<size_t>(d));
      }
      if (stage_metrics_) {
        ins_.stage_encode->Record(s, encode_watch.ElapsedMillis());
      }
    };
    // The caller thread encodes one slice itself instead of submitting
    // them all and blocking: at 1 shard the synchronous path pays zero
    // pool handoffs (the source of a 10x p99 wakeup tail vs the
    // single-worker pipeline), and at N shards the caller overlaps its
    // slice with the pool's N-1.
    std::vector<int> active_shards;
    for (int s = 0; s < num_shards; ++s) {
      if (!shard_nodes[static_cast<size_t>(s)].empty()) {
        active_shards.push_back(s);
      }
    }
    std::vector<std::future<void>> futures;
    for (size_t i = 0; i + 1 < active_shards.size(); ++i) {
      const int s = active_shards[i];
      futures.push_back(encode_pool_.Submit([&encode_shard, s] {
        encode_shard(s);
      }));
    }
    if (!active_shards.empty()) encode_shard(active_shards.back());
    for (auto& f : futures) f.get();

    tensor::Tensor embeddings = tensor::Tensor::FromVector(
        {static_cast<int64_t>(unique_nodes.size()), d}, std::move(emb));
    tensor::Tensor z_src = tensor::GatherRows(embeddings, src_rows);
    tensor::Tensor z_dst = tensor::GatherRows(embeddings, dst_rows);
    tensor::Tensor logits = model_->ScoreLinkLogits(z_src, z_dst);
    tensor::Tensor probs = tensor::Sigmoid(logits);
    result.scores.assign(probs.data(), probs.data() + probs.numel());

    // Package the asynchronous work while we still hold the embeddings.
    records.reserve(events.size());
    const float* flat = embeddings.data();
    for (size_t i = 0; i < events.size(); ++i) {
      InteractionRecord rec;
      rec.event = events[i];
      const float* zs = flat + src_rows[i] * d;
      const float* zd = flat + dst_rows[i] * d;
      rec.z_src.assign(zs, zs + d);
      rec.z_dst.assign(zd, zd + d);
      records.push_back(std::move(rec));
    }
  }
  result.sync_millis = watch.ElapsedMillis();
  ins_.stage_sync->Record(result.sync_millis);

  // ---- Hand off to the asynchronous link. ----
  if (options_.overflow == OverflowPolicy::kBlock) {
    for (auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      while (shard->jobs_in_flight >= options_.queue_capacity) {
        shard->cv.Wait(shard->mu);
      }
    }
  } else {
    // A batch is dropped whole: enqueueing it on a subset of shards would
    // leave the reassembly barrier waiting forever. The inference result
    // stays valid — the mail is simply lost, as in an overloaded broker.
    bool any_full = false;
    for (auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      any_full |= shard->jobs_in_flight >= options_.queue_capacity;
    }
    if (any_full) {
      ins_.batches_rejected->Add(1);
      ins_.mails_dropped->Add(static_cast<int64_t>(events.size()));
      return result;
    }
  }

  auto ctx = std::make_shared<BatchContext>();
  ctx->batch = next_batch_++;
  ctx->base_ordinal = next_ordinal_;
  next_ordinal_ += static_cast<int64_t>(events.size());
  ctx->events = events;
  ingested_since_start_ = true;

  // Graceful degradation (SetShardDown): records homed to a down shard
  // are shed whole, its sampling/application legs are never counted, and
  // its merge contribution to every healthy shard is synthesized empty —
  // so the reassembly barriers complete and Flush never blocks on the
  // dead shard. The flags only flip at flushed batch boundaries
  // (SetShardDown / lane failure between batches), so one read per batch
  // is a consistent view.
  std::vector<char> down(static_cast<size_t>(num_shards), 0);
  int up_count = 0;
  for (int s = 0; s < num_shards; ++s) {
    down[static_cast<size_t>(s)] =
        shard_down_[static_cast<size_t>(s)].load(std::memory_order_relaxed)
            ? 1
            : 0;
    up_count += down[static_cast<size_t>(s)] == 0 ? 1 : 0;
  }

  // Home every record on its source endpoint's shard.
  std::vector<BatchJob> jobs(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    jobs[static_cast<size_t>(s)].ctx = ctx;
  }
  for (size_t i = 0; i < records.size(); ++i) {
    const int home = router_.HomeShardOf(records[i].event);
    auto& job = jobs[static_cast<size_t>(home)];
    job.records.push_back(std::move(records[i]));
    job.event_index.push_back(static_cast<int64_t>(i));
  }
  for (int s = 0; s < num_shards; ++s) {
    const auto homed = jobs[static_cast<size_t>(s)].records.size();
    if (homed == 0) continue;
    if (down[static_cast<size_t>(s)] != 0) {
      ins_.events_shed->Add(s, static_cast<int64_t>(homed));
    } else {
      ins_.events_homed->Add(s, static_cast<int64_t>(homed));
    }
  }

  ins_.batches_ingested->Add(1);
  if (up_count == 0) return result;  // every shard down: fully shed

  {
    std::set<int> up;
    for (int s = 0; s < num_shards; ++s) {
      if (down[static_cast<size_t>(s)] == 0) up.insert(s);
    }
    util::MutexLock lock(flush_mu_);
    inflight_ += 2 * static_cast<int64_t>(up_count);
    apply_remaining_.emplace(ctx->batch, std::move(up));
  }
  for (int s = 0; s < num_shards; ++s) {
    if (down[static_cast<size_t>(s)] != 0) {
      // The dead shard will never route its partials; stand in for it
      // with empty ones so every healthy shard's sender-count barrier
      // still completes. Delivered straight to the inboxes — the dead
      // peer's lanes may be dead too.
      for (int t = 0; t < num_shards; ++t) {
        if (down[static_cast<size_t>(t)] != 0) continue;
        ShardPartial empty;
        empty.batch = ctx->batch;
        empty.from_shard = s;
        EnqueueMessage(t, ShardMessage(std::move(empty)));
      }
      continue;
    }
    Shard& shard = *shards_[static_cast<size_t>(s)];
    int64_t depth = 0;
    {
      util::MutexLock lock(shard.mu);
      ++shard.jobs_in_flight;
      shard.jobs.push_back(std::move(jobs[static_cast<size_t>(s)]));
      depth = static_cast<int64_t>(shard.jobs.size());
      shard.cv.NotifyAll();
    }
    if (stage_metrics_) {
      ins_.job_depth->Set(s, depth);
      ins_.job_highwater->UpdateMax(s, depth);
    }
  }
  return result;
}

void ShardedEngine::WorkerLoop(int shard_id) {
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  std::deque<ShardMessage> mail_run;
  while (true) {
    BatchJob job;
    enum { kNone, kMessages, kJob } next = kNone;
    int64_t jobs_left = -1;
    {
      util::MutexLock lock(shard.mu);
      // Explicit predicate loops (not a lambda passed to the wait): the
      // thread-safety analysis cannot see guarded reads inside a closure.
      if (!shard.closed && shard.mail.empty() && shard.jobs.empty()) {
        // Only time the wait when the worker actually blocks: on the
        // busy path (work already queued) the clock reads themselves
        // would be the dominant cost of a meaningless ~0 sample.
        if (stage_metrics_) {
          Stopwatch idle_watch;
          while (!shard.closed && shard.mail.empty() && shard.jobs.empty()) {
            shard.cv.Wait(shard.mu);
          }
          ins_.stage_idle->Record(shard_id, idle_watch.ElapsedMillis());
        } else {
          while (!shard.closed && shard.mail.empty() && shard.jobs.empty()) {
            shard.cv.Wait(shard.mu);
          }
        }
      }
      // Messages first: applying a finished batch or answering a frontier
      // request is cheap and unblocks other shards; jobs do the expensive
      // sampling. The whole queued run is taken at once: no message
      // handler ever blocks on a peer, so every response and partial the
      // run buffers rides ONE coalesced frame per peer at the end of the
      // run instead of one frame per handled message.
      if (!shard.mail.empty()) {
        mail_run.swap(shard.mail);
        next = kMessages;
      } else if (!shard.jobs.empty()) {
        job = std::move(shard.jobs.front());
        shard.jobs.pop_front();
        jobs_left = static_cast<int64_t>(shard.jobs.size());
        next = kJob;
      } else {
        return;  // closed and fully drained
      }
    }
    // Depth gauges refresh outside the lock (see EnqueueMessage).
    if (stage_metrics_) {
      if (next == kMessages) ins_.mail_depth->Set(shard_id, 0);
      if (jobs_left >= 0) ins_.job_depth->Set(shard_id, jobs_left);
    }
    if (next == kMessages) {
      for (ShardMessage& message : mail_run) {
        DispatchMessage(shard_id, std::move(message));
      }
      mail_run.clear();
      // The handlers may have buffered frontier responses; the requesters
      // are blocked on them, and this worker may idle-wait next iteration.
      FlushOutbound(shard_id);
    } else {
      ProcessJob(shard_id, std::move(job));
    }
  }
}

void ShardedEngine::DispatchMessage(int shard_id, ShardMessage message) {
  if (auto* partial = std::get_if<ShardPartial>(&message)) {
    OnMail(shard_id, std::move(*partial));
  } else if (auto* request = std::get_if<FrontierRequest>(&message)) {
    HandleFrontierRequest(shard_id, std::move(*request));
  } else {
    // Responses are consumed inside WaitForFrontierResponses before the
    // requesting expansion returns, so one reaching the main loop is
    // either a transport re-delivery of an already-completed wait
    // (dropped by tag) or a protocol violation.
    const auto& response = std::get<FrontierResponse>(message);
    Shard& shard = *shards_[static_cast<size_t>(shard_id)];
    APAN_CHECK_MSG(
        ExpansionKey(response.batch, response.hop) <= shard.last_wait,
        "frontier response with no expansion awaiting it");
    CountDuplicateDropped(shard_id);
  }
}

void ShardedEngine::ProcessJob(int shard_id, BatchJob job) {
  if (job.op != BatchJob::Op::kBatch) {
    Status status;
    switch (job.op) {
      case BatchJob::Op::kReset:
        ResetShardLocal(shard_id);
        break;
      case BatchJob::Op::kSnapshot:
        status = SnapshotShardLocal(shard_id, job);
        break;
      case BatchJob::Op::kRestore:
        status = RestoreShardLocal(shard_id, job);
        break;
      case BatchJob::Op::kBatch:
        break;
    }
    Shard& shard = *shards_[static_cast<size_t>(shard_id)];
    {
      util::MutexLock lock(shard.mu);
      --shard.jobs_in_flight;
      shard.cv.NotifyAll();
    }
    util::MutexLock lock(flush_mu_);
    // The outcome is handed back under flush_mu_ — the same lock the
    // submitting caller's wait releases/reacquires — so the write is
    // ordered before the caller's post-wait read.
    if (job.control_status != nullptr) {
      *job.control_status = std::move(status);
    }
    if (--inflight_ == 0) flush_cv_.NotifyAll();
    return;
  }
  const int64_t batch = job.ctx->batch;
  // Shard-local append replaces the old bulk-synchronous epoch gate: the
  // worker first absorbs the batch's events into its own graph slice
  // (advancing the per-shard watermark), and every slice read below is
  // versioned by the batch's base ordinal — sampling sees exactly the
  // events of batches 0..b-1 no matter how far ahead any shard has run.
  {
    APAN_TRACE_SPAN("append");
    Stopwatch append_watch;
    const Status append = graph_.AppendBatchSlice(
        shard_id, batch, job.ctx->events, job.ctx->base_ordinal);
    APAN_CHECK_MSG(append.ok(), append.ToString());
    if (stage_metrics_) {
      ins_.stage_append->Record(shard_id, append_watch.ElapsedMillis());
    }
  }
  // The append may unblock foreign expansions waiting on this slice
  // (their answers self-report as stage.frontier_serve).
  ServeDeferredRequests(shard_id);

  // φ + N over this shard's home events; hops whose frontier nodes are
  // owned elsewhere are forwarded to their owner shards. Propagation is
  // plain float-vector math today; the scope makes any tensor op a
  // future propagator grows draw from this worker's pool. Arena tensors
  // are thread-confined: anything that enters a ShardPartial (read by
  // OTHER shards' workers) must be copied into plain vectors, never
  // handed over as a pooled tensor.
  std::optional<tensor::ArenaScope> arena_scope;
  arena_scope.emplace();
  std::vector<std::vector<graph::HopEntry>> hops = ExpandKHop(shard_id, job);
  PartialPropagation propagation;
  {
    APAN_TRACE_SPAN("propagate");
    Stopwatch propagate_watch;
    propagation = model_->propagator().ComputePartialFromHops(
        job.records, job.event_index, hops);
    if (stage_metrics_) {
      ins_.stage_propagate->Record(shard_id,
                                   propagate_watch.ElapsedMillis());
    }
  }
  RouteMail(shard_id, job, std::move(propagation));

  // Batch teardown is real per-batch work — freeing the nested hop
  // vectors, the arena's recycle pass, and (for the last shard holding
  // the context) the batch's event storage. It scales with batch size,
  // so it gets its own stage instead of hiding in the attribution
  // residue of the fig10 breakdown.
  APAN_TRACE_SPAN("finalize");
  Stopwatch finalize_watch;
  hops.clear();
  hops.shrink_to_fit();
  arena_scope.reset();
  job.records.clear();
  job.records.shrink_to_fit();
  job.event_index.clear();
  job.event_index.shrink_to_fit();
  job.ctx.reset();
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  {
    util::MutexLock lock(shard.mu);
    --shard.jobs_in_flight;
    shard.cv.NotifyAll();  // wake back-pressured InferBatch callers
  }
  if (stage_metrics_) {
    // Recorded before the flush notify so a scrape gated on Flush() sees
    // every stage sample of the batches it waited for.
    ins_.stage_finalize->Record(shard_id, finalize_watch.ElapsedMillis());
  }
  {
    util::MutexLock lock(flush_mu_);
    if (--inflight_ == 0) flush_cv_.NotifyAll();
  }
}

std::vector<std::vector<graph::HopEntry>> ShardedEngine::ExpandKHop(
    int shard_id, const BatchJob& job) {
  APAN_TRACE_SPAN("expand");
  Stopwatch expand_watch;
  std::vector<std::vector<graph::HopEntry>> hops(job.records.size());
  const int32_t num_hops = model_->config().propagation_hops;
  const int64_t fanout = model_->config().sampled_neighbors;
  if (num_hops <= 0 || job.records.empty()) return hops;
  double wait_ms = 0.0;  // inside WaitForFrontierResponses, excluded below
  const int num_shards = options_.num_shards;
  const int64_t ordinal_limit = job.ctx->base_ordinal;

  // frontier[i] = record i's nodes to expand this hop (seeds at hop 1).
  std::vector<std::vector<graph::NodeId>> frontier(job.records.size());
  for (size_t i = 0; i < job.records.size(); ++i) {
    frontier[i] = {job.records[i].event.src, job.records[i].event.dst};
  }
  int64_t requests_sent = 0;
  int64_t nodes_forwarded = 0;
  for (int32_t hop = 1; hop <= num_hops; ++hop) {
    // Flatten the frontiers into slots in record-major order; the slot id
    // is the sequence tag that fixes the reassembled expansion order to
    // exactly the monolithic per-record KHopExpand sequence.
    struct Slot {
      size_t record;
      graph::NodeId node;
    };
    std::vector<Slot> slots;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (const graph::NodeId v : frontier[i]) slots.push_back({i, v});
    }
    if (slots.empty()) break;

    std::vector<std::vector<graph::TemporalNeighbor>> sampled(slots.size());
    std::vector<FrontierRequest> outbound(static_cast<size_t>(num_shards));
    std::vector<size_t> local_slots;
    for (size_t s = 0; s < slots.size(); ++s) {
      const int owner = graph_.OwnerOf(slots[s].node);
      if (owner == shard_id) {
        local_slots.push_back(s);
      } else if (shard_down_[static_cast<size_t>(owner)].load(
                     std::memory_order_relaxed)) {
        // Degradation: a frontier owned by a down shard samples empty —
        // never ask a dead peer and wait forever on its answer. The slot
        // already holds the empty neighbor list it defaults to.
      } else {
        const double t = job.records[slots[s].record].event.timestamp;
        outbound[static_cast<size_t>(owner)].items.push_back(
            {static_cast<int64_t>(s), slots[s].node, t});
      }
    }

    // Requests go out before any local sampling so foreign owners work on
    // their slots while this shard works on its own — hop latency is
    // max(local, remote), not local + remote.
    std::vector<char> awaiting_from(static_cast<size_t>(num_shards), 0);
    int awaiting = 0;
    for (int target = 0; target < num_shards; ++target) {
      FrontierRequest& request = outbound[static_cast<size_t>(target)];
      if (request.items.empty()) continue;
      nodes_forwarded += static_cast<int64_t>(request.items.size());
      ++requests_sent;
      request.batch = job.ctx->batch;
      request.hop = hop;
      request.from_shard = shard_id;
      request.ordinal_limit = ordinal_limit;
      request.fanout = fanout;
      BufferMessage(shard_id, target, ShardMessage(std::move(request)));
      awaiting_from[static_cast<size_t>(target)] = 1;
      ++awaiting;
    }
    // One coalesced frame per peer: this hop's request rides together
    // with any response ServeDeferredRequests buffered after the append.
    // Flushed before local sampling so foreign owners overlap with it.
    FlushOutbound(shard_id);
    for (const size_t s : local_slots) {
      const double t = job.records[slots[s].record].event.timestamp;
      sampled[s] = graph_.MostRecentNeighborsAsOf(slots[s].node, t, fanout,
                                                  ordinal_limit);
    }
    if (awaiting > 0) {
      wait_ms += WaitForFrontierResponses(shard_id, job.ctx->batch, hop,
                                          awaiting_from, sampled);
    }

    // Reassemble in slot order and build the next frontier.
    std::vector<std::vector<graph::NodeId>> next(job.records.size());
    for (size_t s = 0; s < slots.size(); ++s) {
      auto& record_hops = hops[slots[s].record];
      auto& record_next = next[slots[s].record];
      for (const graph::TemporalNeighbor& n : sampled[s]) {
        record_hops.push_back({n.node, n.edge_id, n.timestamp, hop});
        record_next.push_back(n.node);
      }
    }
    frontier = std::move(next);
  }

  if (requests_sent > 0) {
    ins_.frontier_requests->Add(shard_id, requests_sent);
    ins_.frontier_nodes_forwarded->Add(shard_id, nodes_forwarded);
  }
  if (stage_metrics_) {
    // stage.sample is this shard's own expansion work; the time spent
    // blocked on foreign owners is stage.frontier_wait (recorded inside
    // the wait, net of interleaved message handling).
    ins_.stage_sample->Record(
        shard_id, std::max(0.0, expand_watch.ElapsedMillis() - wait_ms));
  }
  return hops;
}

double ShardedEngine::WaitForFrontierResponses(
    int shard_id, int64_t batch, int32_t hop,
    std::vector<char>& awaiting_from,
    std::vector<std::vector<graph::TemporalNeighbor>>& sampled) {
  APAN_TRACE_SPAN("frontier_wait");
  Stopwatch wait_watch;
  double nested_ms = 0.0;  // interleaved message handling, not waiting
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  const ExpansionKey current(batch, hop);
  int awaiting = 0;
  for (const char pending : awaiting_from) awaiting += pending != 0;
  while (awaiting > 0) {
    ShardMessage message;
    bool have_message = false;
    int64_t mail_left = 0;
    {
      util::MutexLock lock(shard.mu);
      while (shard.mail.empty()) {
        // Timed wait: a peer can be marked down mid-wait (SetShardDown
        // or a lane failure on another worker), and no inbox signal
        // accompanies the flag flip — its answer is never coming, so
        // the wait must notice on its own and degrade (empty sample).
        shard.cv.WaitFor(shard.mu, std::chrono::milliseconds(10));
        for (size_t p = 0; p < awaiting_from.size(); ++p) {
          if (awaiting_from[p] != 0 &&
              shard_down_[p].load(std::memory_order_relaxed)) {
            awaiting_from[p] = 0;
            --awaiting;
          }
        }
        if (shard_down_[static_cast<size_t>(shard_id)].load(
                std::memory_order_relaxed)) {
          // This shard itself was marked down mid-wait: its requests (or
          // the answers) were shed in transit. Abandon every outstanding
          // slot and finish the job degraded.
          for (size_t p = 0; p < awaiting_from.size(); ++p) {
            if (awaiting_from[p] != 0) {
              awaiting_from[p] = 0;
              --awaiting;
            }
          }
        }
        if (awaiting == 0) break;
      }
      if (!shard.mail.empty()) {
        message = std::move(shard.mail.front());
        shard.mail.pop_front();
        mail_left = static_cast<int64_t>(shard.mail.size());
        have_message = true;
      }
    }
    if (!have_message) continue;  // awaiting re-checked by the loop head
    if (stage_metrics_) {
      ins_.mail_depth->Set(shard_id, mail_left);
    }
    if (auto* response = std::get_if<FrontierResponse>(&message)) {
      const ExpansionKey key(response->batch, response->hop);
      if (key == current) {
        char& pending = awaiting_from[static_cast<size_t>(
            response->from_shard)];
        if (pending == 0) {
          // Transport re-delivery of a responder we already consumed.
          CountDuplicateDropped(shard_id);
          continue;
        }
        pending = 0;
        APAN_CHECK_MSG(response->neighbors.size() == response->slots.size(),
                       "frontier response with mismatched slot/neighbor rows");
        for (size_t i = 0; i < response->slots.size(); ++i) {
          const int64_t slot = response->slots[i];
          APAN_CHECK_MSG(
              slot >= 0 && static_cast<size_t>(slot) < sampled.size(),
              "frontier response slot outside the requested expansion");
          sampled[static_cast<size_t>(slot)] =
              std::move(response->neighbors[i]);
        }
        --awaiting;
      } else {
        // A response for a later expansion cannot exist (its request has
        // not been sent); an earlier key is a re-delivered duplicate.
        APAN_CHECK_MSG(key < current,
                       "frontier response for a future expansion");
        CountDuplicateDropped(shard_id);
      }
    } else {
      // Serving requests (and applying finished batches) while blocked is
      // what keeps the frontier protocol deadlock-free: the shard at the
      // minimum outstanding batch can always be answered by everyone.
      // Their cost is the handled stage's (merge / frontier_serve), not
      // this wait's — subtract it so the stage decomposition stays
      // disjoint.
      Stopwatch nested_watch;
      DispatchMessage(shard_id, std::move(message));
      // A nested handler may have buffered a response its requester is
      // blocked on — nothing may stay buffered while this worker waits.
      FlushOutbound(shard_id);
      nested_ms += nested_watch.ElapsedMillis();
    }
  }
  shard.last_wait = current;
  const double total_ms = wait_watch.ElapsedMillis();
  if (stage_metrics_) {
    ins_.stage_frontier_wait->Record(shard_id,
                                     std::max(0.0, total_ms - nested_ms));
  }
  return total_ms;
}

void ShardedEngine::HandleFrontierRequest(int shard_id,
                                          FrontierRequest request) {
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  // Replay protection: a requester has at most one request outstanding
  // per owner, at strictly increasing (batch, hop) — anything at or below
  // the accepted watermark is a transport re-delivery (it was already
  // answered or deferred, else the requester could not have progressed).
  ExpansionKey& watermark =
      shard.accepted_request[static_cast<size_t>(request.from_shard)];
  const ExpansionKey key(request.batch, request.hop);
  if (key <= watermark) {
    CountDuplicateDropped(shard_id);
    return;
  }
  watermark = key;
  if (graph_.watermark(shard_id) < request.batch) {
    // This slice has not absorbed batches 0..request.batch-1 yet; answer
    // after the append that advances the watermark far enough.
    shard.deferred_requests.push_back(std::move(request));
    return;
  }
  AnswerFrontierRequest(shard_id, request);
}

void ShardedEngine::AnswerFrontierRequest(int shard_id,
                                          const FrontierRequest& request) {
  APAN_TRACE_SPAN("frontier_answer");
  Stopwatch serve_watch;
  FrontierResponse response;
  response.batch = request.batch;
  response.hop = request.hop;
  response.from_shard = shard_id;
  response.slots.reserve(request.items.size());
  response.neighbors.reserve(request.items.size());
  for (const FrontierItem& item : request.items) {
    response.slots.push_back(item.slot);
    response.neighbors.push_back(graph_.MostRecentNeighborsAsOf(
        item.node, item.before_time, request.fanout, request.ordinal_limit));
  }
  // Buffered, not sent: the caller's context owns the flush point (after
  // a dispatched message, or coalesced with the next hop's requests).
  BufferMessage(shard_id, request.from_shard,
                ShardMessage(std::move(response)));
  if (stage_metrics_) {
    ins_.stage_frontier_serve->Record(shard_id, serve_watch.ElapsedMillis());
  }
}

void ShardedEngine::ServeDeferredRequests(int shard_id) {
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  if (shard.deferred_requests.empty()) return;
  const int64_t watermark = graph_.watermark(shard_id);
  std::vector<FrontierRequest> still_deferred;
  for (FrontierRequest& request : shard.deferred_requests) {
    if (request.batch <= watermark) {
      AnswerFrontierRequest(shard_id, request);
    } else {
      still_deferred.push_back(std::move(request));
    }
  }
  shard.deferred_requests = std::move(still_deferred);
}

void ShardedEngine::BufferMessage(int from_shard, int to_shard,
                                  ShardMessage message) {
  shards_[static_cast<size_t>(from_shard)]
      ->outbound[static_cast<size_t>(to_shard)]
      .push_back(std::move(message));
}

void ShardedEngine::FlushOutbound(int from_shard) {
  Shard& shard = *shards_[static_cast<size_t>(from_shard)];
  const bool self_down =
      shard_down_[static_cast<size_t>(from_shard)].load(
          std::memory_order_relaxed);
  for (size_t to = 0; to < shard.outbound.size(); ++to) {
    std::vector<ShardMessage>& run = shard.outbound[to];
    if (run.empty()) continue;
    const int to_shard = static_cast<int>(to);
    if (self_down ||
        shard_down_[to].load(std::memory_order_relaxed)) {
      // Degraded path: runs to (or from) a down shard are shed before
      // they touch the transport. Any ShardPartial in the run belongs to
      // a batch that counted the peer's application leg at ingest (a
      // batch ingested after the peer went down never buffers a partial
      // to it — its apply set excludes the peer), so retire those legs
      // here or Flush wedges on a merge that will never happen.
      std::vector<int64_t> partial_batches;
      for (const ShardMessage& message : run) {
        if (const auto* partial = std::get_if<ShardPartial>(&message)) {
          partial_batches.push_back(partial->batch);
        }
      }
      ins_.sends_shed->Add(to_shard, static_cast<int64_t>(run.size()));
      run = std::vector<ShardMessage>();
      // Compensate the DESTINATION's legs in both directions: a peer
      // missing this shard's partial can never reach its sender-count
      // barrier, so its application leg is as dead as one whose own
      // partial was lost.
      CompensateLostPartials(to_shard, partial_batches);
      continue;
    }
    // Remember which batches' partials ride this run BEFORE the move:
    // if the transport refuses the frame even after its own lane
    // recovery (reconnect + backoff), those batches' application legs
    // on the peer must be compensated, and the messages are gone.
    std::vector<int64_t> partial_batches;
    for (const ShardMessage& message : run) {
      if (const auto* partial = std::get_if<ShardPartial>(&message)) {
        partial_batches.push_back(partial->batch);
      }
    }
    const int64_t run_size = static_cast<int64_t>(run.size());
    // One coalesced frame per peer — on a serializing transport this is
    // where N same-destination messages become one syscall.
    const Status sent = transport_->SendBatch(
        from_shard, to_shard, std::move(run));
    run = std::vector<ShardMessage>();
    if (sent.ok()) continue;
    // The lane is dead beyond repair: mark the peer down so subsequent
    // traffic sheds cheaply, count what was lost, and keep serving the
    // healthy shards instead of aborting the process.
    ins_.sends_shed->Add(to_shard, run_size);
    shard_down_[to].store(true, std::memory_order_relaxed);
    CompensateLostPartials(to_shard, partial_batches);
  }
}

void ShardedEngine::CompensateLostPartials(
    int to_shard, const std::vector<int64_t>& batches) {
  if (batches.empty()) return;
  util::MutexLock lock(flush_mu_);
  bool retired = false;
  for (const int64_t batch : batches) {
    auto remaining = apply_remaining_.find(batch);
    if (remaining == apply_remaining_.end()) continue;
    // erase() doubles as the dedupe: a second shed partial for the same
    // (batch, peer) — another sender's, or a duplicate — finds the leg
    // already retired and is a no-op.
    if (remaining->second.erase(to_shard) == 0) continue;
    if (remaining->second.empty()) apply_remaining_.erase(remaining);
    --inflight_;
    retired = true;
  }
  if (retired && inflight_ == 0) flush_cv_.NotifyAll();
}

void ShardedEngine::EnqueueMessage(int to_shard, ShardMessage message) {
  // The transport is a pluggable extension point and (over a socket) the
  // message crossed a deserialization boundary, so shard ids are validated
  // before they index anything: wire.cc's "no UB" guarantee covers frame
  // structure, this covers field ranges. A violation is a broken transport
  // or peer — abort with a message, like the reader-thread decode checks.
  const auto valid_shard = [this](int shard) {
    return shard >= 0 && shard < options_.num_shards;
  };
  APAN_CHECK_MSG(valid_shard(to_shard),
                 "transport delivered a message to an out-of-range shard");
  int from_shard = -1;
  if (const auto* partial = std::get_if<ShardPartial>(&message)) {
    from_shard = partial->from_shard;
  } else if (const auto* request = std::get_if<FrontierRequest>(&message)) {
    from_shard = request->from_shard;
  } else {
    from_shard = std::get<FrontierResponse>(message).from_shard;
  }
  APAN_CHECK_MSG(valid_shard(from_shard),
                 "transport delivered a message with an out-of-range sender");
  Shard& target = *shards_[static_cast<size_t>(to_shard)];
  int64_t depth = 0;
  {
    util::MutexLock lock(target.mu);
    target.mail.push_back(std::move(message));
    depth = static_cast<int64_t>(target.mail.size());
    target.cv.NotifyAll();
  }
  // Gauge updates happen after the unlock: lengthening the mail critical
  // section is the one way a relaxed-atomic metric could contend with the
  // serving path itself.
  if (stage_metrics_) {
    ins_.mail_depth->Set(to_shard, depth);
    ins_.mail_highwater->UpdateMax(to_shard, depth);
  }
}

void ShardedEngine::CountDuplicateDropped(int shard_id) {
  ins_.duplicates_dropped->Add(shard_id, 1);
}

void ShardedEngine::RouteMail(int from_shard, BatchJob& job,
                              PartialPropagation&& propagation) {
  APAN_TRACE_SPAN("route");
  Stopwatch route_watch;
  const int num_shards = options_.num_shards;
  std::vector<ShardPartial> outbound(static_cast<size_t>(num_shards));
  for (int t = 0; t < num_shards; ++t) {
    outbound[static_cast<size_t>(t)].batch = job.ctx->batch;
    outbound[static_cast<size_t>(t)].from_shard = from_shard;
  }

  // z(t−) write-backs go to each endpoint's owner; sequence tags let the
  // owner replay them in global event order (later events win).
  for (size_t i = 0; i < job.records.size(); ++i) {
    InteractionRecord& rec = job.records[i];
    const int64_t seq = 2 * job.event_index[i];
    outbound[static_cast<size_t>(router_.ShardOf(rec.event.src))]
        .state_updates.push_back(
            {seq, rec.event.src, std::move(rec.z_src)});
    outbound[static_cast<size_t>(router_.ShardOf(rec.event.dst))]
        .state_updates.push_back(
            {seq + 1, rec.event.dst, std::move(rec.z_dst)});
  }
  for (auto& tagged : propagation.hop0) {
    outbound[static_cast<size_t>(
                 router_.ShardOf(tagged.delivery.recipient))]
        .hop0.push_back(std::move(tagged));
  }
  for (auto& partial : propagation.partial) {
    outbound[static_cast<size_t>(router_.ShardOf(partial.recipient))]
        .partial.push_back(std::move(partial));
  }

  int64_t routed = 0;
  int64_t cross_shard = 0;
  for (int t = 0; t < num_shards; ++t) {
    ShardPartial& out = outbound[static_cast<size_t>(t)];
    const int64_t mails =
        static_cast<int64_t>(out.hop0.size() + out.partial.size());
    routed += mails;
    if (t != from_shard) cross_shard += mails;
    BufferMessage(from_shard, t, ShardMessage(std::move(out)));
  }
  // Covers the partials just buffered AND any response still waiting from
  // an expansion-free path (0 hops / empty record set).
  FlushOutbound(from_shard);
  ins_.mails_routed->Add(from_shard, routed);
  ins_.mails_cross_shard->Add(from_shard, cross_shard);
  if (stage_metrics_) {
    ins_.stage_route->Record(from_shard, route_watch.ElapsedMillis());
  }
}

void ShardedEngine::OnMail(int shard_id, ShardPartial partial) {
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  // Replay protection: a partial for an already-merged batch, or from a
  // sender already represented in the pending set, is a transport
  // re-delivery — applying it twice would double mail and wedge the
  // sender-count completion barrier.
  if (partial.batch < shard.next_merge) {
    CountDuplicateDropped(shard_id);
    return;
  }
  std::vector<ShardPartial>& parts = shard.pending[partial.batch];
  for (const ShardPartial& existing : parts) {
    if (existing.from_shard == partial.from_shard) {
      CountDuplicateDropped(shard_id);
      return;
    }
  }
  parts.push_back(std::move(partial));
  // Batches complete in order: every sender emits its partials in batch
  // order, so once all senders reported for next_merge, every earlier
  // batch has already been merged.
  while (true) {
    auto it = shard.pending.find(shard.next_merge);
    if (it == shard.pending.end() ||
        static_cast<int>(it->second.size()) != options_.num_shards) {
      break;
    }
    std::vector<ShardPartial> merged = std::move(it->second);
    shard.pending.erase(it);
    ApplyMergedBatch(shard_id, std::move(merged));
    ++shard.next_merge;
  }
}

void ShardedEngine::ApplyMergedBatch(int shard_id,
                                     std::vector<ShardPartial> parts) {
  APAN_TRACE_SPAN("merge");
  Stopwatch watch;
  // Deterministic merge order: contributions sorted by sender shard.
  std::sort(parts.begin(), parts.end(),
            [](const ShardPartial& a, const ShardPartial& b) {
              return a.from_shard < b.from_shard;
            });
  const int64_t batch = parts.front().batch;

  // 1. z(t−) write-backs in global event order (later events win).
  std::vector<StateUpdate> updates;
  for (auto& part : parts) {
    std::move(part.state_updates.begin(), part.state_updates.end(),
              std::back_inserter(updates));
    part.state_updates.clear();
  }
  std::sort(updates.begin(), updates.end(),
            [](const StateUpdate& a, const StateUpdate& b) {
              return a.sequence < b.sequence;
            });

  // 2. Hop-0 mail replayed in global event order — exactly the per-node
  // delivery order the single-worker pipeline produces.
  std::vector<PartialPropagation::TaggedDelivery> tagged;
  for (auto& part : parts) {
    std::move(part.hop0.begin(), part.hop0.end(),
              std::back_inserter(tagged));
    part.hop0.clear();
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const PartialPropagation::TaggedDelivery& a,
               const PartialPropagation::TaggedDelivery& b) {
              return a.sequence < b.sequence;
            });
  std::vector<MailDelivery> hop0;
  hop0.reserve(tagged.size());
  for (auto& t : tagged) hop0.push_back(std::move(t.delivery));

  // 3. ρ across the whole batch: merge per-recipient partial sums from
  // all senders, then finalize to one reduced mail per recipient.
  std::vector<PartialPropagation::PartialReduce> partials;
  for (auto& part : parts) {
    std::move(part.partial.begin(), part.partial.end(),
              std::back_inserter(partials));
    part.partial.clear();
  }
  std::stable_sort(partials.begin(), partials.end(),
                   [](const PartialPropagation::PartialReduce& a,
                      const PartialPropagation::PartialReduce& b) {
                     return a.recipient < b.recipient;
                   });
  std::vector<MailDelivery> reduced;
  size_t i = 0;
  while (i < partials.size()) {
    PartialPropagation::PartialReduce merged = std::move(partials[i]);
    for (++i; i < partials.size() &&
              partials[i].recipient == merged.recipient;
         ++i) {
      const auto& extra = partials[i];
      for (size_t k = 0; k < merged.sum.size(); ++k) {
        merged.sum[k] += extra.sum[k];
      }
      merged.newest = std::max(merged.newest, extra.newest);
      merged.count += extra.count;
    }
    reduced.push_back(MailPropagator::FinalizeReduce(std::move(merged)));
  }

  {
    // Everything this batch touches is the owner shard's private store:
    // routed state updates and mail land in shard-local memory, never in
    // the model or another shard's rows.
    Shard& shard = *shards_[static_cast<size_t>(shard_id)];
    util::MutexLock state_lock(shard.state_mu);
    for (const StateUpdate& u : updates) {
      shard.store->SetLastEmbedding(u.node, u.z);
    }
    shard.store->DeliverBatch(std::move(hop0));
    shard.store->DeliverBatch(std::move(reduced));
  }
  // Teardown inside the watch: `updates` still owns two z vectors per
  // event (SetLastEmbedding copies), and freeing them is a real,
  // batch-sized slice of the merge — dropping it after the record would
  // leak it into the fig10 attribution residue.
  updates.clear();
  updates.shrink_to_fit();
  tagged.clear();
  tagged.shrink_to_fit();
  partials.clear();
  partials.shrink_to_fit();
  parts.clear();
  parts.shrink_to_fit();
  ins_.stage_merge->Record(shard_id, watch.ElapsedMillis());

  util::MutexLock lock(flush_mu_);
  auto remaining = apply_remaining_.find(batch);
  // A missing barrier (or a leg already retired) means the shed
  // compensation beat a late merge here: an at-least-once transport
  // delivered a held duplicate of a partial whose original was shed when
  // the peer went down. The merge's writes are idempotent against the
  // degraded outcome, but the leg was already accounted for — counting
  // it again would drive inflight_ negative and corrupt Flush.
  if (remaining == apply_remaining_.end() ||
      remaining->second.erase(shard_id) == 0) {
    return;
  }
  if (remaining->second.empty()) {
    apply_remaining_.erase(remaining);
    ins_.batches_propagated->Add(shard_id, 1);
  }
  if (--inflight_ == 0) flush_cv_.NotifyAll();
}

void ShardedEngine::Flush() {
  util::MutexLock lock(flush_mu_);
  while (inflight_ != 0) flush_cv_.Wait(flush_mu_);
}

void ShardedEngine::ResetShardLocal(int shard_id) {
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  {
    // The encode pool also reads the store (though ResetState's infer
    // lock means no encode can be running); keep the lock discipline.
    util::MutexLock state_lock(shard.state_mu);
    shard.store->Reset();
  }
  graph_.ResetSlice(shard_id);
  // Worker-confined replay state, reset on the worker's own thread:
  // batch numbering restarts at 0, so the merge cursor and the frontier
  // watermarks must rewind with it.
  shard.pending.clear();
  shard.next_merge = 0;
  shard.deferred_requests.clear();
  shard.accepted_request.assign(static_cast<size_t>(options_.num_shards),
                                ExpansionKey{-1, 0});
  shard.last_wait = ExpansionKey{-1, 0};
}

Status ShardedEngine::SnapshotShardLocal(int shard_id, const BatchJob& job) {
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  // Flush proved every batch below the watermark merged everywhere, so a
  // non-empty pending map means replay tags and the watermark disagree —
  // refuse to capture an image that could not replay to a unique state.
  if (!shard.pending.empty()) {
    return Status::FailedPrecondition(internal::StrCat(
        "shard ", shard_id, " has ", shard.pending.size(),
        " unmerged partial sets at a flushed point"));
  }
  snapshot::ShardSnapshot snap;
  snap.shard = shard_id;
  snap.num_shards = options_.num_shards;
  snap.num_nodes = static_cast<int64_t>(partition_->owner_of.size());
  snap.next_batch = job.snap_next_batch;
  snap.next_ordinal = job.snap_next_ordinal;
  {
    // The capture only reads, but the encode pool reads these rows too;
    // same discipline as every other store access.
    util::MutexLock state_lock(shard.state_mu);
    const core::Mailbox& mailbox = shard.store->mailbox();
    snap.owned_nodes = mailbox.num_nodes();
    snap.mailbox_slots = mailbox.slots();
    snap.mail_dim = mailbox.dim();
    snap.state_dim = shard.store->dim();
    const auto data = mailbox.raw_data();
    snap.mailbox_data.assign(data.begin(), data.end());
    const auto timestamps = mailbox.raw_timestamps();
    snap.mailbox_timestamps.assign(timestamps.begin(), timestamps.end());
    const auto head = mailbox.raw_head();
    snap.mailbox_head.assign(head.begin(), head.end());
    const auto count = mailbox.raw_count();
    snap.mailbox_count.assign(count.begin(), count.end());
    const auto order = mailbox.raw_order();
    snap.mailbox_order.assign(order.begin(), order.end());
    const auto z = shard.store->raw_state();
    snap.z_rows.assign(z.begin(), z.end());
  }
  snap.slice = graph_.ExportSlice(shard_id);
  snap.next_merge = shard.next_merge;
  snap.accepted_request = shard.accepted_request;
  snap.last_wait_batch = shard.last_wait.first;
  snap.last_wait_hop = shard.last_wait.second;
  return snapshot::WriteShardSnapshot(snap, job.snapshot_path);
}

Status ShardedEngine::RestoreShardLocal(int shard_id, const BatchJob& job) {
  Shard& shard = *shards_[static_cast<size_t>(shard_id)];
  const snapshot::ShardSnapshot& snap = *job.restore;
  {
    util::MutexLock state_lock(shard.state_mu);
    core::Mailbox& mailbox = shard.store->mailbox();
    // Both installers validate fully before mutating, so a failure here
    // leaves the pre-restore state intact; the geometry was already
    // matched against the engine's topology in RestoreShard, which makes
    // a RestoreRawState size failure after a RestoreRaw success
    // impossible (both derive from the same owned/dim image fields).
    APAN_RETURN_NOT_OK(mailbox.RestoreRaw(
        snap.mailbox_data, snap.mailbox_timestamps, snap.mailbox_head,
        snap.mailbox_count, snap.mailbox_order));
    APAN_RETURN_NOT_OK(shard.store->RestoreRawState(snap.z_rows));
  }
  APAN_RETURN_NOT_OK(graph_.RestoreSlice(shard_id, snap.slice));
  // Replay/dedup state, rewound to the image's flushed point: pending and
  // deferred are structurally empty there (Flush settled every barrier),
  // and the watermarks resume exactly where the capture stood.
  shard.pending.clear();
  shard.next_merge = snap.next_merge;
  shard.deferred_requests.clear();
  shard.accepted_request.assign(snap.accepted_request.begin(),
                                snap.accepted_request.end());
  shard.last_wait = ExpansionKey{snap.last_wait_batch, snap.last_wait_hop};
  return Status::OK();
}

void ShardedEngine::ResetState() {
  // Holding infer_mu_ end-to-end serializes against InferBatch: no new
  // batch can interleave with the reset, and batch/ordinal sequencing
  // below is rewound under the same lock that advances it.
  util::MutexLock infer_lock(infer_mu_);
  if (shutdown_) return;
  // Enforced, not just documented: rewinding the replay watermarks under
  // a duplicating transport would let a re-delivered pre-reset frame be
  // accepted as new-epoch state — silent corruption, so abort loudly.
  APAN_CHECK_MSG(transport_->exactly_once(),
                 "ResetState requires an exactly-once transport: a rewound "
                 "replay watermark cannot drop a pre-reset re-delivery");
  // Settle everything accepted so far. After this, every inbox and every
  // exactly-once transport lane is empty (Flush proves all application
  // legs ran, and legs are only reachable via delivered messages).
  Flush();
  // Route the reset through each shard's worker so the worker-confined
  // state (merge cursor, frontier watermarks, graph slice) is only ever
  // touched by its own thread.
  {
    util::MutexLock lock(flush_mu_);
    inflight_ += options_.num_shards;
  }
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = *shards_[static_cast<size_t>(s)];
    BatchJob job;
    job.op = BatchJob::Op::kReset;
    util::MutexLock lock(shard.mu);
    ++shard.jobs_in_flight;
    shard.jobs.push_back(std::move(job));
    shard.cv.NotifyAll();
  }
  {
    util::MutexLock lock(flush_mu_);
    while (inflight_ != 0) flush_cv_.Wait(flush_mu_);
  }
  next_batch_ = 0;
  next_ordinal_ = 0;
  ingested_since_start_ = false;
}

Status ShardedEngine::RunControlJob(int shard, BatchJob job) {
  // Settle everything accepted so far: control jobs observe (or install)
  // a quiescent shard, and Flush proves every application leg ran.
  Flush();
  Status status;
  job.control_status = &status;
  {
    util::MutexLock lock(flush_mu_);
    ++inflight_;
  }
  Shard& target = *shards_[static_cast<size_t>(shard)];
  {
    util::MutexLock lock(target.mu);
    ++target.jobs_in_flight;
    target.jobs.push_back(std::move(job));
    target.cv.NotifyAll();
  }
  {
    // The worker writes `status` under flush_mu_ before its decrement, so
    // observing inflight_ == 0 under the same lock orders the read.
    util::MutexLock lock(flush_mu_);
    while (inflight_ != 0) flush_cv_.Wait(flush_mu_);
  }
  return status;
}

Status ShardedEngine::SnapshotShard(int shard, const std::string& path) {
  util::MutexLock infer_lock(infer_mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("SnapshotShard after Shutdown");
  }
  if (shard < 0 || shard >= options_.num_shards) {
    return Status::InvalidArgument(internal::StrCat(
        "SnapshotShard: shard ", shard, " out of range [0, ",
        options_.num_shards, ")"));
  }
  BatchJob job;
  job.op = BatchJob::Op::kSnapshot;
  job.snapshot_path = path;
  // The engine-level numbering is captured under infer_mu_ — the lock
  // that advances it — and rides into the image so a restored engine
  // resumes the batch/ordinal sequence exactly where this one stood.
  job.snap_next_batch = next_batch_;
  job.snap_next_ordinal = next_ordinal_;
  return RunControlJob(shard, std::move(job));
}

Status ShardedEngine::RestoreShard(int shard, const std::string& path) {
  util::MutexLock infer_lock(infer_mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("RestoreShard after Shutdown");
  }
  if (shard < 0 || shard >= options_.num_shards) {
    return Status::InvalidArgument(internal::StrCat(
        "RestoreShard: shard ", shard, " out of range [0, ",
        options_.num_shards, ")"));
  }
  // Same hazard ResetState aborts on, surfaced as Status here: rewinding
  // replay watermarks under an at-least-once transport would let a held
  // pre-restore re-delivery land in the restored epoch as fresh state. A
  // virgin engine is exempt — nothing was ever sent, so there is nothing
  // to re-deliver — which is exactly the crash-rejoin shape: a fresh
  // process restores every shard, then replays the tail.
  if (!transport_->exactly_once() && ingested_since_start_) {
    return Status::FailedPrecondition(
        "RestoreShard on an engine that has already ingested under an "
        "at-least-once transport: a held re-delivery could be accepted by "
        "the rewound replay watermarks; restore into a fresh engine");
  }
  auto snap_or = snapshot::ReadShardSnapshot(path);
  if (!snap_or.ok()) return snap_or.status();
  auto snap = std::make_shared<const snapshot::ShardSnapshot>(
      std::move(*snap_or));
  // Topology validation before anything mutates: the image must match
  // this engine, this shard, and this partition exactly.
  if (snap->shard != shard) {
    return Status::InvalidArgument(internal::StrCat(
        "snapshot is for shard ", snap->shard, ", not shard ", shard));
  }
  if (snap->num_shards != options_.num_shards) {
    return Status::InvalidArgument(internal::StrCat(
        "snapshot taken under ", snap->num_shards, " shards; engine has ",
        options_.num_shards));
  }
  const auto& config = model_->config();
  if (snap->num_nodes != config.num_nodes ||
      snap->mailbox_slots != config.mailbox_slots ||
      snap->mail_dim != config.embedding_dim ||
      snap->state_dim != config.embedding_dim) {
    return Status::InvalidArgument(internal::StrCat(
        "snapshot geometry (nodes=", snap->num_nodes,
        ", slots=", snap->mailbox_slots, ", mail_dim=", snap->mail_dim,
        ", state_dim=", snap->state_dim,
        ") does not match the engine's model config"));
  }
  const int64_t owned =
      partition_->owned_count[static_cast<size_t>(shard)];
  if (snap->owned_nodes != owned) {
    return Status::InvalidArgument(internal::StrCat(
        "snapshot owns ", snap->owned_nodes, " nodes; shard ", shard,
        " owns ", owned, " under this partition"));
  }
  const int64_t restored_batch = snap->next_batch;
  const int64_t restored_ordinal = snap->next_ordinal;
  BatchJob job;
  job.op = BatchJob::Op::kRestore;
  job.restore = std::move(snap);
  APAN_RETURN_NOT_OK(RunControlJob(shard, std::move(job)));
  // Adopt the image's numbering. Restoring a consistent set (one image
  // per shard, all captured at the same flushed point) writes the same
  // values num_shards times — idempotent; the caller then replays events
  // from this batch watermark to catch up to the present.
  next_batch_ = restored_batch;
  next_ordinal_ = restored_ordinal;
  return Status::OK();
}

void ShardedEngine::SetShardDown(int shard, bool down) {
  util::MutexLock infer_lock(infer_mu_);
  if (shutdown_) return;
  APAN_CHECK_MSG(shard >= 0 && shard < options_.num_shards,
                 "SetShardDown: shard id out of range");
  // Flush first so the flag flips at a quiescent point: no in-flight
  // batch straddles the transition, so every batch sees one consistent
  // up/down view at ingest. (Marking a shard up again without a restore
  // or reset is only sound if it never missed a batch — its slice
  // watermark must match the engine's numbering.)
  Flush();
  shard_down_[static_cast<size_t>(shard)].store(down,
                                                std::memory_order_relaxed);
}

void ShardedEngine::Shutdown() {
  util::MutexLock shutdown_lock(shutdown_mu_);
  if (joined_) return;
  {
    util::MutexLock lock(infer_mu_);
    shutdown_ = true;
  }
  // Drain everything first — shutting down never loses accepted mail.
  Flush();
  // Then drain the transport *before* the workers go away: a socket lane
  // (or a fault decorator's delay buffer) can still hold frames after
  // Flush — necessarily re-deliveries, since Flush proved every batch
  // applied — and the workers must stay alive to receive and drop them;
  // stopping the transport also guarantees no delivery callback runs
  // into a dead engine.
  transport_->Stop();
  for (auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->closed = true;
    shard->cv.NotifyAll();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  joined_ = true;
}

ShardedEngine::Stats ShardedEngine::stats() const {
  // A facade over the registry counters (the mutexed Stats fields these
  // summed were migrated to per-shard counter cells). Relaxed sums: exact
  // after Flush, near-point-in-time while running — same contract the
  // callers already had, minus the flush_mu_ contention.
  Stats s;
  s.batches_ingested = ins_.batches_ingested->Value();
  s.batches_propagated = ins_.batches_propagated->Value();
  s.batches_rejected = ins_.batches_rejected->Value();
  s.mails_routed = ins_.mails_routed->Value();
  s.mails_cross_shard = ins_.mails_cross_shard->Value();
  s.mails_dropped = ins_.mails_dropped->Value();
  s.frontier_requests = ins_.frontier_requests->Value();
  s.frontier_nodes_forwarded = ins_.frontier_nodes_forwarded->Value();
  s.duplicates_dropped = ins_.duplicates_dropped->Value();
  s.events_shed = ins_.events_shed->Value();
  s.sends_shed = ins_.sends_shed->Value();
  return s;
}

}  // namespace serve
}  // namespace apan
