// Deterministic partition of the node id space into shards.
//
// APAN's mailbox is partitionable by node: every write (ψ mail append,
// z(t−) update) and every synchronous read (mailbox read-out + last
// embedding) touches per-node rows only, so giving each shard exclusive
// ownership of a node subset makes shard-local state access lock-free
// with respect to other shards. The paper's §3.6 tolerance for
// out-of-order mail is what makes the cross-shard routing correct: a
// recipient's FIFO mailbox reads out time-sorted, so mail arriving from
// many shards in arbitrary interleavings converges to the same read-out.
//
// The router is a thin view over a shared graph::NodePartition — the
// SAME index instance the graph slices and per-shard state stores
// consume, so all three planes agree on every node's owner by
// construction, whichever builder produced the index (the canonical hash
// or the locality-aware greedy assignment).

#ifndef APAN_SERVE_SHARD_ROUTER_H_
#define APAN_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/node_partition.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace apan {
namespace serve {

/// \brief Maps node ids (and events, via their source endpoint) to shards
/// through a shared ownership index.
///
/// With the default (hash) index the mapping is a pure function of
/// (node, num_shards) — stable across runs and processes, so a
/// distributed deployment can compute it on every tier without
/// coordination. A locality index is a pure function of the warmup
/// stream it was built from, so tiers sharing that stream still agree.
class ShardRouter {
 public:
  /// Builds the canonical hash index (NodePartition::BuildDefault) — for
  /// standalone use and tests.
  ShardRouter(int num_shards, int64_t num_nodes);

  /// Shares a caller-owned ownership index (hash or locality built).
  explicit ShardRouter(std::shared_ptr<const graph::NodePartition> partition);

  int num_shards() const { return partition_->num_shards; }
  int64_t num_nodes() const { return partition_->num_nodes(); }
  const std::shared_ptr<const graph::NodePartition>& partition() const {
    return partition_;
  }

  /// Owner shard of `node`'s state-store rows (mailbox slice + z(t−)).
  int ShardOf(graph::NodeId node) const;

  /// Home shard of an event: the shard that computes its mail (φ) and
  /// k-hop fan-out (N), namely the source endpoint's owner.
  int HomeShardOf(const graph::Event& event) const {
    return ShardOf(event.src);
  }

  /// \brief Stable partition of `nodes` into per-shard lists (input order
  /// preserved within each shard).
  std::vector<std::vector<graph::NodeId>> PartitionNodes(
      std::span<const graph::NodeId> nodes) const;

  /// \brief Indices into `events` grouped by home shard, order preserved.
  std::vector<std::vector<int64_t>> PartitionEvents(
      std::span<const graph::Event> events) const;

  /// Number of owned nodes per shard (load-balance diagnostics).
  std::vector<int64_t> OwnedNodeCounts() const;

 private:
  std::shared_ptr<const graph::NodePartition> partition_;
};

}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_SHARD_ROUTER_H_
