// The shard-to-shard message vocabulary of the serving tier.
//
// Everything that crosses a shard boundary — routed mail partials, z(t−)
// write-backs, and the frontier request/response protocol for cross-slice
// k-hop expansion — is one of the ShardMessage alternatives below. The
// structs are pure data (ids, tags, payload vectors): no pointers into
// engine state, so a message can be handed to an in-process deque or
// serialized onto a wire (serve/wire.h) without the receiver sharing the
// sender's address space.
//
// Replay tags: every alternative carries enough identity for a receiver to
// drop duplicates — a ShardPartial is keyed by (batch, from_shard), a
// frontier request/response by (batch, hop, peer shard). Sequence-tag
// replay makes reordering harmless (docs/serving.md, "Transport plane");
// the tags make duplication harmless too, which is what lets the engine
// run over an at-least-once transport.

#ifndef APAN_SERVE_SHARD_MESSAGE_H_
#define APAN_SERVE_SHARD_MESSAGE_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "core/propagator.h"
#include "graph/temporal_graph.h"

namespace apan {
namespace serve {

/// One routed z(t−) write-back; sequence = 2 * event index + endpoint.
struct StateUpdate {
  int64_t sequence = 0;
  graph::NodeId node = -1;
  std::vector<float> z;
};

/// One shard's slice of one batch's propagation output, addressed to one
/// recipient shard. Sent for every (sender, recipient, batch) triple —
/// empty slices included — so the recipient can detect batch completion
/// by counting senders; (batch, from_shard) is the duplicate-drop tag.
struct ShardPartial {
  int64_t batch = 0;
  int from_shard = 0;
  std::vector<StateUpdate> state_updates;
  std::vector<core::PartialPropagation::TaggedDelivery> hop0;
  std::vector<core::PartialPropagation::PartialReduce> partial;
};

/// One foreign frontier node to sample, tagged with its slot in the
/// requesting shard's expansion (the sequence tag that makes the
/// reassembled hop order deterministic).
struct FrontierItem {
  int64_t slot = 0;
  graph::NodeId node = -1;
  double before_time = 0.0;
};

/// A batched ask: "sample these nodes of yours, as the graph stood before
/// batch `batch`". Answerable once the owner's watermark reaches `batch`;
/// deferred until then. A requester has at most one request in flight per
/// owner, at strictly increasing (batch, hop) — the owner drops anything
/// at or below its last accepted (batch, hop) from that requester as a
/// duplicate.
struct FrontierRequest {
  int64_t batch = 0;
  int32_t hop = 0;
  int from_shard = 0;
  int64_t ordinal_limit = 0;
  int64_t fanout = 0;
  std::vector<FrontierItem> items;
};

/// The owner's reply: per requested slot, the sampled neighbors.
/// `from_shard` is the answering owner — the requester awaits exactly one
/// response per asked owner and drops re-deliveries by (batch, hop,
/// from_shard).
struct FrontierResponse {
  int64_t batch = 0;
  int32_t hop = 0;
  int from_shard = 0;
  std::vector<int64_t> slots;
  std::vector<std::vector<graph::TemporalNeighbor>> neighbors;
};

/// Shard-to-shard message on the unbounded mail lane. A variant (not a
/// product struct) so a queued message stores only its own payload and a
/// kind/payload mismatch is unrepresentable.
using ShardMessage =
    std::variant<ShardPartial, FrontierRequest, FrontierResponse>;

}  // namespace serve
}  // namespace apan

#endif  // APAN_SERVE_SHARD_MESSAGE_H_
