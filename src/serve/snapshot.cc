#include "serve/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace apan {
namespace serve {
namespace snapshot {

namespace {

// ---- Little-endian writers (wire.cc's idiom, private to this TU) -----------

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF32(std::vector<uint8_t>* out, float v) {
  PutU32(out, std::bit_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutF32Vec(std::vector<uint8_t>* out, const std::vector<float>& v) {
  PutU64(out, v.size());
  for (const float x : v) PutF32(out, x);
}

void PutF64Vec(std::vector<uint8_t>* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (const double x : v) PutF64(out, x);
}

void PutI32Vec(std::vector<uint8_t>* out, const std::vector<int32_t>& v) {
  PutU64(out, v.size());
  for (const int32_t x : v) PutI32(out, x);
}

// ---- Bounds-checked reader --------------------------------------------------

Status Truncated(const char* what) {
  return Status::IoError(
      internal::StrCat("snapshot: truncated payload reading ", what));
}

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU64(uint64_t* v, const char* what) {
    if (remaining() < 8) return Truncated(what);
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    *v = x;
    return Status::OK();
  }

  Status ReadU32(uint32_t* v, const char* what) {
    if (remaining() < 4) return Truncated(what);
    uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    *v = x;
    return Status::OK();
  }

  Status ReadI64(int64_t* v, const char* what) {
    uint64_t u = 0;
    APAN_RETURN_NOT_OK(ReadU64(&u, what));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status ReadI32(int32_t* v, const char* what) {
    uint32_t u = 0;
    APAN_RETURN_NOT_OK(ReadU32(&u, what));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }

  Status ReadF64(double* v, const char* what) {
    uint64_t u = 0;
    APAN_RETURN_NOT_OK(ReadU64(&u, what));
    *v = std::bit_cast<double>(u);
    return Status::OK();
  }

  Status ReadF32(float* v, const char* what) {
    uint32_t u = 0;
    APAN_RETURN_NOT_OK(ReadU32(&u, what));
    *v = std::bit_cast<float>(u);
    return Status::OK();
  }

  /// Reads a vector count and validates it against the bytes remaining
  /// BEFORE any allocation, exactly as wire.cc's Reader does — a corrupt
  /// count must fail, not drive a huge reserve.
  Status ReadCount(uint64_t* count, size_t min_element_bytes,
                   const char* what) {
    APAN_RETURN_NOT_OK(ReadU64(count, what));
    const uint64_t cap =
        min_element_bytes == 0
            ? static_cast<uint64_t>(remaining())
            : static_cast<uint64_t>(remaining()) / min_element_bytes;
    if (*count > cap) {
      return Status::IoError(internal::StrCat(
          "snapshot: corrupt count for ", what, " (", *count, " elements, ",
          remaining(), " bytes left)"));
    }
    return Status::OK();
  }

  Status ReadF32Vec(std::vector<float>* v, const char* what) {
    uint64_t count = 0;
    APAN_RETURN_NOT_OK(ReadCount(&count, 4, what));
    v->resize(static_cast<size_t>(count));
    for (auto& x : *v) APAN_RETURN_NOT_OK(ReadF32(&x, what));
    return Status::OK();
  }

  Status ReadF64Vec(std::vector<double>* v, const char* what) {
    uint64_t count = 0;
    APAN_RETURN_NOT_OK(ReadCount(&count, 8, what));
    v->resize(static_cast<size_t>(count));
    for (auto& x : *v) APAN_RETURN_NOT_OK(ReadF64(&x, what));
    return Status::OK();
  }

  Status ReadI32Vec(std::vector<int32_t>* v, const char* what) {
    uint64_t count = 0;
    APAN_RETURN_NOT_OK(ReadCount(&count, 4, what));
    v->resize(static_cast<size_t>(count));
    for (auto& x : *v) APAN_RETURN_NOT_OK(ReadI32(&x, what));
    return Status::OK();
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// a*b with overflow detection — geometry fields come off disk, so their
/// products must be checked before they parameterize any comparison.
bool CheckedMul(uint64_t a, uint64_t b, uint64_t* out) {
  if (a != 0 && b > UINT64_MAX / a) return false;
  *out = a * b;
  return true;
}

/// Expected element count of a mailbox plane from the declared geometry;
/// fails on negative fields or product overflow.
Status PlaneSize(int64_t owned, int64_t a, int64_t b, const char* what,
                 uint64_t* out) {
  if (owned < 0 || a < 0 || b < 0) {
    return Status::IoError(
        internal::StrCat("snapshot: negative geometry for ", what));
  }
  uint64_t ab = 0;
  if (!CheckedMul(static_cast<uint64_t>(a), static_cast<uint64_t>(b), &ab) ||
      !CheckedMul(static_cast<uint64_t>(owned), ab, out)) {
    return Status::IoError(
        internal::StrCat("snapshot: geometry overflow for ", what));
  }
  return Status::OK();
}

Status CheckPlane(size_t got, uint64_t expected, const char* what) {
  if (static_cast<uint64_t>(got) != expected) {
    return Status::IoError(internal::StrCat(
        "snapshot: ", what, " holds ", got, " elements, geometry implies ",
        expected));
  }
  return Status::OK();
}

const uint32_t* Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

Status Errno(const char* op, const std::string& path) {
  return Status::IoError(internal::StrCat("snapshot: ", op, " ", path,
                                          " failed: ", std::strerror(errno)));
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xffffffffu;
  for (const uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::vector<uint8_t> EncodeShardSnapshot(const ShardSnapshot& snap) {
  std::vector<uint8_t> payload;
  // Identity + replay position.
  PutI32(&payload, snap.shard);
  PutI32(&payload, snap.num_shards);
  PutI64(&payload, snap.num_nodes);
  PutI64(&payload, snap.next_batch);
  PutI64(&payload, snap.next_ordinal);
  // Geometry.
  PutI64(&payload, snap.owned_nodes);
  PutI64(&payload, snap.mailbox_slots);
  PutI64(&payload, snap.mail_dim);
  PutI64(&payload, snap.state_dim);
  // Mailbox planes.
  PutF32Vec(&payload, snap.mailbox_data);
  PutF64Vec(&payload, snap.mailbox_timestamps);
  PutI32Vec(&payload, snap.mailbox_head);
  PutI32Vec(&payload, snap.mailbox_count);
  PutI32Vec(&payload, snap.mailbox_order);
  // z(t−) rows.
  PutF32Vec(&payload, snap.z_rows);
  // Graph slice.
  PutU64(&payload, snap.slice.rows.size());
  for (const auto& row : snap.slice.rows) {
    PutU64(&payload, row.size());
    for (const auto& e : row) {
      PutI64(&payload, e.node);
      PutI64(&payload, e.edge_id);
      PutF64(&payload, e.timestamp);
      PutI64(&payload, e.ordinal);
    }
  }
  PutU64(&payload, snap.slice.homed_events.size());
  for (const graph::Event& event : snap.slice.homed_events) {
    PutI64(&payload, event.src);
    PutI64(&payload, event.dst);
    PutF64(&payload, event.timestamp);
    PutI64(&payload, event.edge_id);
  }
  PutF64(&payload, snap.slice.latest_timestamp);
  PutI64(&payload, snap.slice.watermark);
  // Replay/dedup state.
  PutI64(&payload, snap.next_merge);
  PutU64(&payload, snap.accepted_request.size());
  for (const auto& [batch, hop] : snap.accepted_request) {
    PutI64(&payload, batch);
    PutI32(&payload, hop);
  }
  PutI64(&payload, snap.last_wait_batch);
  PutI32(&payload, snap.last_wait_hop);

  APAN_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                 "snapshot: payload exceeds kMaxPayloadBytes");
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutU64(&out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(&out, Crc32(payload));
  return out;
}

Result<ShardSnapshot> DecodeShardSnapshot(std::span<const uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    return Status::IoError(internal::StrCat(
        "snapshot: ", bytes.size(), " bytes is smaller than the ",
        kHeaderBytes + kTrailerBytes, "-byte envelope"));
  }
  Reader header(bytes.subspan(0, kHeaderBytes));
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_length = 0;
  APAN_RETURN_NOT_OK(header.ReadU32(&magic, "magic"));
  APAN_RETURN_NOT_OK(header.ReadU32(&version, "version"));
  APAN_RETURN_NOT_OK(header.ReadU64(&payload_length, "payload_length"));
  if (magic != kMagic) {
    return Status::InvalidArgument(
        internal::StrCat("snapshot: bad magic ", magic, " (not APSN)"));
  }
  if (version != kVersion) {
    return Status::InvalidArgument(internal::StrCat(
        "snapshot: version ", version, " is not the supported version ",
        kVersion));
  }
  if (payload_length > kMaxPayloadBytes) {
    return Status::IoError(internal::StrCat(
        "snapshot: payload of ", payload_length, " bytes exceeds the ",
        kMaxPayloadBytes, "-byte cap"));
  }
  if (payload_length != bytes.size() - kHeaderBytes - kTrailerBytes) {
    return Status::IoError(internal::StrCat(
        "snapshot: header claims ", payload_length, " payload bytes but ",
        bytes.size() - kHeaderBytes - kTrailerBytes, " are present"));
  }
  const std::span<const uint8_t> payload =
      bytes.subspan(kHeaderBytes, static_cast<size_t>(payload_length));
  Reader trailer(bytes.subspan(kHeaderBytes + payload.size(), kTrailerBytes));
  uint32_t stored_crc = 0;
  APAN_RETURN_NOT_OK(trailer.ReadU32(&stored_crc, "crc32"));
  const uint32_t computed_crc = Crc32(payload);
  if (stored_crc != computed_crc) {
    return Status::IoError(internal::StrCat(
        "snapshot: CRC mismatch (stored ", stored_crc, ", computed ",
        computed_crc, ") — refusing to restore from a corrupt checkpoint"));
  }

  Reader r(payload);
  ShardSnapshot snap;
  APAN_RETURN_NOT_OK(r.ReadI32(&snap.shard, "shard"));
  APAN_RETURN_NOT_OK(r.ReadI32(&snap.num_shards, "num_shards"));
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.num_nodes, "num_nodes"));
  if (snap.num_shards <= 0 || snap.shard < 0 ||
      snap.shard >= snap.num_shards) {
    return Status::IoError(internal::StrCat(
        "snapshot: shard ", snap.shard, " of ", snap.num_shards,
        " is not a valid identity"));
  }
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.next_batch, "next_batch"));
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.next_ordinal, "next_ordinal"));
  if (snap.next_batch < 0 || snap.next_ordinal < 0) {
    return Status::IoError("snapshot: negative replay position");
  }
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.owned_nodes, "owned_nodes"));
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.mailbox_slots, "mailbox_slots"));
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.mail_dim, "mail_dim"));
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.state_dim, "state_dim"));

  APAN_RETURN_NOT_OK(r.ReadF32Vec(&snap.mailbox_data, "mailbox_data"));
  APAN_RETURN_NOT_OK(
      r.ReadF64Vec(&snap.mailbox_timestamps, "mailbox_timestamps"));
  APAN_RETURN_NOT_OK(r.ReadI32Vec(&snap.mailbox_head, "mailbox_head"));
  APAN_RETURN_NOT_OK(r.ReadI32Vec(&snap.mailbox_count, "mailbox_count"));
  APAN_RETURN_NOT_OK(r.ReadI32Vec(&snap.mailbox_order, "mailbox_order"));
  APAN_RETURN_NOT_OK(r.ReadF32Vec(&snap.z_rows, "z_rows"));

  // The mailbox planes must agree with the declared geometry — a snapshot
  // whose vectors and geometry disagree is corrupt even if each decoded
  // cleanly on its own.
  uint64_t expected = 0;
  APAN_RETURN_NOT_OK(PlaneSize(snap.owned_nodes, snap.mailbox_slots,
                               snap.mail_dim, "mailbox_data", &expected));
  APAN_RETURN_NOT_OK(CheckPlane(snap.mailbox_data.size(), expected,
                                "mailbox_data"));
  APAN_RETURN_NOT_OK(PlaneSize(snap.owned_nodes, snap.mailbox_slots, 1,
                               "mailbox_timestamps", &expected));
  APAN_RETURN_NOT_OK(CheckPlane(snap.mailbox_timestamps.size(), expected,
                                "mailbox_timestamps"));
  APAN_RETURN_NOT_OK(CheckPlane(snap.mailbox_order.size(), expected,
                                "mailbox_order"));
  APAN_RETURN_NOT_OK(
      PlaneSize(snap.owned_nodes, 1, 1, "mailbox_head", &expected));
  APAN_RETURN_NOT_OK(CheckPlane(snap.mailbox_head.size(), expected,
                                "mailbox_head"));
  APAN_RETURN_NOT_OK(CheckPlane(snap.mailbox_count.size(), expected,
                                "mailbox_count"));
  APAN_RETURN_NOT_OK(PlaneSize(snap.owned_nodes, snap.state_dim, 1,
                               "z_rows", &expected));
  APAN_RETURN_NOT_OK(CheckPlane(snap.z_rows.size(), expected, "z_rows"));

  uint64_t count = 0;
  APAN_RETURN_NOT_OK(r.ReadCount(&count, 8, "slice.rows"));
  snap.slice.rows.resize(static_cast<size_t>(count));
  for (auto& row : snap.slice.rows) {
    uint64_t entries = 0;
    APAN_RETURN_NOT_OK(r.ReadCount(&entries, 32, "slice.row"));
    row.resize(static_cast<size_t>(entries));
    for (auto& e : row) {
      APAN_RETURN_NOT_OK(r.ReadI64(&e.node, "entry.node"));
      APAN_RETURN_NOT_OK(r.ReadI64(&e.edge_id, "entry.edge_id"));
      APAN_RETURN_NOT_OK(r.ReadF64(&e.timestamp, "entry.timestamp"));
      APAN_RETURN_NOT_OK(r.ReadI64(&e.ordinal, "entry.ordinal"));
    }
  }
  if (static_cast<int64_t>(snap.slice.rows.size()) != snap.owned_nodes) {
    return Status::IoError(internal::StrCat(
        "snapshot: slice holds ", snap.slice.rows.size(),
        " rows, geometry implies ", snap.owned_nodes));
  }
  APAN_RETURN_NOT_OK(r.ReadCount(&count, 32, "slice.homed_events"));
  snap.slice.homed_events.resize(static_cast<size_t>(count));
  for (graph::Event& event : snap.slice.homed_events) {
    APAN_RETURN_NOT_OK(r.ReadI64(&event.src, "event.src"));
    APAN_RETURN_NOT_OK(r.ReadI64(&event.dst, "event.dst"));
    APAN_RETURN_NOT_OK(r.ReadF64(&event.timestamp, "event.timestamp"));
    APAN_RETURN_NOT_OK(r.ReadI64(&event.edge_id, "event.edge_id"));
  }
  APAN_RETURN_NOT_OK(
      r.ReadF64(&snap.slice.latest_timestamp, "slice.latest_timestamp"));
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.slice.watermark, "slice.watermark"));

  APAN_RETURN_NOT_OK(r.ReadI64(&snap.next_merge, "next_merge"));
  APAN_RETURN_NOT_OK(r.ReadCount(&count, 12, "accepted_request"));
  if (count != static_cast<uint64_t>(snap.num_shards)) {
    return Status::IoError(internal::StrCat(
        "snapshot: ", count, " per-peer frontier watermarks for ",
        snap.num_shards, " shards"));
  }
  snap.accepted_request.resize(static_cast<size_t>(count));
  for (auto& [batch, hop] : snap.accepted_request) {
    APAN_RETURN_NOT_OK(r.ReadI64(&batch, "accepted.batch"));
    APAN_RETURN_NOT_OK(r.ReadI32(&hop, "accepted.hop"));
  }
  APAN_RETURN_NOT_OK(r.ReadI64(&snap.last_wait_batch, "last_wait_batch"));
  APAN_RETURN_NOT_OK(r.ReadI32(&snap.last_wait_hop, "last_wait_hop"));

  if (r.remaining() != 0) {
    return Status::IoError(internal::StrCat(
        "snapshot: ", r.remaining(), " trailing bytes after payload"));
  }
  return snap;
}

Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status st = Errno("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    const Status st = Errno("close", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  // fsync the directory so the rename itself is durable. Best-effort on
  // exotic filesystems that refuse O_DIRECTORY opens — the data file is
  // already synced, only the directory entry's durability is at stake.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
    if (bytes.size() > kMaxPayloadBytes + kHeaderBytes + kTrailerBytes) {
      ::close(fd);
      return Status::IoError(internal::StrCat(
          "snapshot: ", path, " exceeds the ", kMaxPayloadBytes,
          "-byte payload cap"));
    }
  }
  ::close(fd);
  return bytes;
}

Status WriteShardSnapshot(const ShardSnapshot& snap, const std::string& path) {
  const std::vector<uint8_t> bytes = EncodeShardSnapshot(snap);
  return WriteFileAtomic(path, bytes);
}

Result<ShardSnapshot> ReadShardSnapshot(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  APAN_RETURN_NOT_OK(bytes.status());
  return DecodeShardSnapshot(*bytes);
}

}  // namespace snapshot
}  // namespace serve
}  // namespace apan
