// The mailbox — APAN's per-node message store (paper §3.5, ψ).
//
// Each node owns a fixed number of slots holding the most recent mails it
// has received, in a FIFO ring (the paper's "first-in-first-out queue data
// structure ... will retain the latest information and discard old
// mails"). Read-out is time-sorted, which is what makes APAN tolerant of
// out-of-order delivery in distributed streaming systems (paper §3.6,
// "Mailbox Mechanism"). The sort is maintained at *write* time: each node
// keeps a slot permutation ordered by (timestamp, arrival), updated by an
// O(slots) insertion step per delivery, so ReadBatch — the hot half of
// every serve-path encode — is a straight gather with no per-read sort or
// allocation. Eviction stays pure FIFO (oldest *arrival* leaves first,
// regardless of timestamp), exactly the ring the paper describes.

#ifndef APAN_CORE_MAILBOX_H_
#define APAN_CORE_MAILBOX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace apan {
namespace core {

/// One reduced mail addressed to one node.
struct MailDelivery {
  graph::NodeId recipient = -1;
  std::vector<float> mail;
  double timestamp = 0.0;
  int64_t contributions = 0;  ///< Mails merged by ρ into this delivery.
};

/// \brief Fixed-capacity per-node mail storage over a dense row range.
///
/// Memory is O(num_nodes * slots * dim) — bounded by the node count, not
/// the (unbounded) edge count; §4.7 argues this is why the mailbox is not
/// the system's memory bottleneck. Rows are whatever the owner maps them
/// to: the whole graph (ApanModel's default store) or one shard's owned
/// nodes behind NodeStateStore's dense local index. num_nodes == 0 is a
/// valid empty mailbox (a shard that owns no nodes).
class Mailbox {
 public:
  Mailbox(int64_t num_nodes, int64_t slots, int64_t dim);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t slots() const { return slots_; }
  int64_t dim() const { return dim_; }

  /// \brief Stores `mail` (dim() floats) for `node`, evicting the oldest
  /// mail when the ring is full. Out-of-order timestamps are accepted.
  void Deliver(graph::NodeId node, std::span<const float> mail,
               double timestamp);

  /// \brief Delivers a batch of mails, grouping deliveries per node so the
  /// ring bookkeeping (head/count/base offset) is computed once per
  /// recipient instead of once per mail. Equivalent to calling Deliver()
  /// per entry: mails addressed to the same node land in their span order
  /// (grouping is stable), and inter-node order never affects state.
  /// \return number of mails stored.
  int64_t DeliverBatch(std::span<const MailDelivery> deliveries);

  /// Number of mails currently held for `node` (0..slots()).
  int64_t ValidCount(graph::NodeId node) const;

  /// Timestamp of the newest mail held for `node` (-inf when empty).
  double NewestTimestamp(graph::NodeId node) const;

  /// Mail contents of one slot of one node, in *storage* order (tests).
  std::span<const float> RawSlot(graph::NodeId node, int64_t slot) const;

  /// Batched, time-sorted read-out for the encoder. An empty node list is
  /// valid (admission control can produce one) and yields a well-formed
  /// zero-row result.
  struct ReadResult {
    /// {batch, slots, dim} — valid mails first (oldest to newest), then
    /// zero padding.
    tensor::Tensor mails;
    /// batch*slots additive attention mask: 0 for valid slots,
    /// MultiHeadAttention::kMaskedOut for padding. Nodes with an empty
    /// mailbox get an all-zero mask (uniform attention over zeros is the
    /// stable cold-start behaviour).
    std::vector<float> mask;
    /// Valid mail count per batch row.
    std::vector<int64_t> counts;
    /// batch*slots mail timestamps in the same (time-sorted) slot order;
    /// 0 for padding. Consumed by the time-kernel positional mode.
    std::vector<double> timestamps;
  };
  ReadResult ReadBatch(const std::vector<graph::NodeId>& nodes) const;

  /// Drops all mail (used between training epochs).
  void Clear();

  /// \name Checkpoint hooks (serve/snapshot.cc)
  /// Raw storage views in *storage* order, not read order — the sorted
  /// slot permutation rides along so a restored mailbox is bitwise the
  /// original, never a re-derived approximation of it.
  ///@{
  std::span<const float> raw_data() const { return data_; }
  std::span<const double> raw_timestamps() const { return timestamps_; }
  std::span<const int32_t> raw_head() const { return head_; }
  std::span<const int32_t> raw_count() const { return count_; }
  std::span<const int32_t> raw_order() const { return order_; }

  /// \brief Replaces the full mailbox state with spans previously taken
  /// from the raw_*() accessors (a decoded snapshot). Sizes and the ring
  /// invariants (head/count ranges, permutation validity, time-sorted
  /// prefix) are validated first; on any violation the mailbox is left
  /// unchanged and a Status describes the defect — corrupt checkpoints
  /// must never become undefined mailbox behaviour.
  Status RestoreRaw(std::span<const float> data,
                    std::span<const double> timestamps,
                    std::span<const int32_t> head,
                    std::span<const int32_t> count,
                    std::span<const int32_t> order);
  ///@}

  /// Bytes of mail payload storage (including the per-node sorted slot
  /// permutation — it scales with nodes × slots like everything else).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(data_.size() * sizeof(float) +
                                timestamps_.size() * sizeof(double) +
                                order_.size() * sizeof(int32_t));
  }

 private:
  size_t SlotOffset(graph::NodeId node, int64_t slot) const {
    return (static_cast<size_t>(node) * static_cast<size_t>(slots_) +
            static_cast<size_t>(slot)) *
           static_cast<size_t>(dim_);
  }

  /// Inserts `slot` (timestamp already written) into node `n`'s sorted
  /// permutation, which currently holds `valid` entries. The new slot is
  /// the latest arrival, so it lands after every entry with an equal or
  /// older timestamp — the position a stable sort-on-read would give it.
  void InsertIntoOrder(size_t n, int32_t slot, double timestamp,
                       int32_t valid);
  /// Removes `slot` from node `n`'s sorted permutation of `valid` entries
  /// (FIFO eviction: the departing slot is the oldest arrival, which can
  /// sit anywhere in timestamp order).
  void RemoveFromOrder(size_t n, int32_t slot, int32_t valid);

  int64_t num_nodes_;
  int64_t slots_;
  int64_t dim_;
  std::vector<float> data_;        // num_nodes * slots * dim
  std::vector<double> timestamps_; // num_nodes * slots
  std::vector<int32_t> head_;      // ring head per node
  std::vector<int32_t> count_;     // valid slots per node
  /// Per node, the first count_[n] entries are slot ids sorted by
  /// (timestamp asc, arrival asc) — the read-out order, maintained on
  /// write so reads never sort.
  std::vector<int32_t> order_;     // num_nodes * slots
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_MAILBOX_H_
