#include "core/decoder.h"

#include "tensor/ops.h"

namespace apan {
namespace core {

using tensor::Tensor;

LinkDecoder::LinkDecoder(int64_t embedding_dim, int64_t hidden, Rng* rng)
    : mlp_(2 * embedding_dim, hidden, 1, rng, /*dropout=*/0.1f) {
  RegisterChild(&mlp_);
}

Tensor LinkDecoder::Forward(const Tensor& z_src, const Tensor& z_dst,
                            Rng* dropout_rng) const {
  return mlp_.Forward(tensor::ConcatLastDim({z_src, z_dst}), dropout_rng);
}

EdgeDecoder::EdgeDecoder(int64_t embedding_dim, int64_t feature_dim,
                         int64_t hidden, Rng* rng)
    : mlp_(2 * embedding_dim + feature_dim, hidden, 1, rng,
           /*dropout=*/0.1f) {
  RegisterChild(&mlp_);
}

Tensor EdgeDecoder::Forward(const Tensor& z_src, const Tensor& edge_features,
                            const Tensor& z_dst, Rng* dropout_rng) const {
  return mlp_.Forward(
      tensor::ConcatLastDim({z_src, edge_features, z_dst}), dropout_rng);
}

NodeDecoder::NodeDecoder(int64_t embedding_dim, int64_t hidden, Rng* rng)
    : mlp_(embedding_dim, hidden, 1, rng, /*dropout=*/0.1f) {
  RegisterChild(&mlp_);
}

Tensor NodeDecoder::Forward(const Tensor& z, Rng* dropout_rng) const {
  return mlp_.Forward(z, dropout_rng);
}

}  // namespace core
}  // namespace apan
