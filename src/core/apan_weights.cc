#include "core/apan_weights.h"

#include <cmath>

#include "core/node_state_store.h"
#include "tensor/ops.h"
#include "util/status.h"

namespace apan {
namespace core {

ApanWeights::ApanWeights(const ApanConfig* config, const ApanEncoder* encoder,
                         const LinkDecoder* link_decoder,
                         const EdgeDecoder* edge_decoder,
                         const NodeDecoder* node_decoder,
                         const MailPropagator* propagator,
                         const tensor::Tensor* link_scale,
                         const tensor::Tensor* link_bias)
    : config_(config),
      encoder_(encoder),
      link_decoder_(link_decoder),
      edge_decoder_(edge_decoder),
      node_decoder_(node_decoder),
      propagator_(propagator),
      link_scale_(link_scale),
      link_bias_(link_bias) {
  APAN_CHECK(config != nullptr && encoder != nullptr && propagator != nullptr);
}

ApanEncoder::Output ApanWeights::EncodeNodes(
    const NodeStateStore& store, const std::vector<graph::NodeId>& nodes) const {
  return encoder_->EncodeNodes(store, nodes, /*dropout_rng=*/nullptr);
}

tensor::Tensor ApanWeights::ScoreLinkLogits(const tensor::Tensor& z_src,
                                            const tensor::Tensor& z_dst) const {
  const float inv_sqrt_d =
      1.0f / std::sqrt(static_cast<float>(config_->embedding_dim));
  tensor::Tensor dot =
      tensor::MulScalar(tensor::RowwiseDot(z_src, z_dst), inv_sqrt_d);
  return tensor::Add(tensor::MatMul(dot, *link_scale_), *link_bias_);
}

}  // namespace core
}  // namespace apan
