// ApanModel — the full APAN system (paper Figure 3), factored into the
// two planes a distributed deployment needs (paper §3.6):
//
//   · shared serve-time *weights* — encoder, task decoders, link
//     calibration — small, immutable during serving, replicable on every
//     shard (exposed as the const-only core::ApanWeights view);
//   · mutable per-node *state* — the z(t−) table and the mailbox — held
//     in a core::NodeStateStore. The model owns one default store
//     covering all nodes (the monolithic layout that training and the
//     single-worker AsyncPipeline use); serve::ShardedEngine replaces it
//     with N disjoint per-shard stores and never touches this one.
//
// The synchronous path (EncodeNodes → decoder) touches only the state
// store — node embeddings and mailboxes — and never queries the temporal
// graph; the test suite asserts this via TemporalGraph::query_count().
// The asynchronous path (ProcessBatchPostInference) appends events to
// the graph and runs the propagator.

#ifndef APAN_CORE_APAN_MODEL_H_
#define APAN_CORE_APAN_MODEL_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/apan_weights.h"
#include "core/config.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/mailbox.h"
#include "core/node_state_store.h"
#include "core/propagator.h"
#include "graph/edge_features.h"
#include "graph/temporal_graph.h"
#include "nn/module.h"

namespace apan {
namespace core {

/// \brief End-to-end APAN over one graph.
class ApanModel : public nn::Module {
 public:
  /// `features` must outlive the model. The model owns its temporal graph
  /// (events are appended as the stream is consumed).
  ApanModel(const ApanConfig& config,
            const graph::EdgeFeatureStore* features, uint64_t seed);

  const ApanConfig& config() const { return config_; }
  graph::TemporalGraph& graph() { return graph_; }
  const graph::TemporalGraph& graph() const { return graph_; }
  /// The default (all-nodes) state store's mailbox. Local rows equal
  /// global node ids here, so it is addressed by node id as always.
  Mailbox& mailbox() { return DefaultStore().mailbox(); }
  const Mailbox& mailbox() const { return DefaultStore().mailbox(); }
  /// The default all-nodes state store (z(t−) rows + mailbox). Allocated
  /// lazily on first monolithic-state access: a process that serves only
  /// through ShardedEngine (which never touches it) does not pay
  /// O(num_nodes · slots · dim) for a plane it replaced with per-shard
  /// stores — weights-only replicas stay weights-only.
  NodeStateStore& state_store() { return DefaultStore(); }
  const NodeStateStore& state_store() const { return DefaultStore(); }
  /// Whether the default store has been materialized (quiescent
  /// inspection; false for a model used exclusively through
  /// ShardedEngine).
  bool state_store_allocated() const { return store_ != nullptr; }
  ApanEncoder& encoder() { return encoder_; }
  const ApanEncoder& encoder() const { return encoder_; }
  LinkDecoder& link_decoder() { return link_decoder_; }
  EdgeDecoder& edge_decoder() { return edge_decoder_; }
  NodeDecoder& node_decoder() { return node_decoder_; }
  Rng* rng() { return &rng_; }

  /// Const view over the replicable serve-time weights (encoder,
  /// decoders, link calibration). Cheap to construct; the model must
  /// outlive it. This is the only handle serve::ShardedEngine uses while
  /// running — everything mutable lives in per-shard NodeStateStores.
  ApanWeights weights() const;

  // ---- Synchronous link ----------------------------------------------------

  /// Current stored embedding z(t−) of each node as a constant tensor.
  tensor::Tensor GatherLastEmbeddings(
      const std::vector<graph::NodeId>& nodes) const;

  /// \brief Encoder pass for a set of nodes: reads mailboxes + last
  /// embeddings from the default store, returns new embeddings (in the
  /// autograd graph when training) and attention weights. No graph
  /// queries.
  ApanEncoder::Output EncodeNodes(const std::vector<graph::NodeId>& nodes);

  /// \brief Link-prediction logits per the paper's Eq. 7: a scaled dot
  /// product σ(z_iᵀ z_j) with a learnable affine calibration. (The MLP
  /// decoders serve the downstream classification heads of §3.4.)
  /// \return {batch, 1} logits.
  tensor::Tensor ScoreLinkLogits(const tensor::Tensor& z_src,
                                 const tensor::Tensor& z_dst) const;

  // ---- Asynchronous link ---------------------------------------------------

  /// \brief Completes a batch after inference: stores detached embeddings
  /// as the nodes' new z(t−), runs mail propagation, and appends the
  /// events to the temporal graph. Equivalent to ApplyEmbeddings +
  /// propagator().Propagate + AppendEvents.
  /// \param records one entry per event, in timestamp order.
  /// \return first error from the graph append, if any.
  Status ProcessBatchPostInference(
      const std::vector<InteractionRecord>& records);

  /// Stage 1 of post-inference: stores each record's embeddings as the
  /// endpoints' new z(t−) (later records win on duplicates).
  void ApplyEmbeddings(const std::vector<InteractionRecord>& records);

  /// Stage 3 of post-inference: appends the events to the temporal graph.
  /// Must run *after* propagation sampling for the same batch, so that
  /// neighborhoods reflect the graph at batch start.
  Status AppendEvents(const std::vector<InteractionRecord>& records);

  /// Writes detached embedding values into the z(t−) table.
  void UpdateLastEmbeddings(const std::vector<graph::NodeId>& nodes,
                            const tensor::Tensor& embeddings);

  /// Raw read of one node's stored embedding (tests / examples).
  /// Bounds-checked: aborts on an out-of-range node.
  std::vector<float> LastEmbedding(graph::NodeId node) const;

  /// Raw write of one node's stored embedding z(t−). Bounds-checked:
  /// `node` must be in range and `z` must hold embedding_dim floats — a
  /// violation aborts instead of silently indexing out of range.
  void SetLastEmbedding(graph::NodeId node, std::span<const float> z);

  // ---- Lifecycle -----------------------------------------------------------

  /// Zeroes all per-node state and drops all mail; resets the graph to
  /// empty. Called between training epochs (streaming state is epoch-local
  /// while weights persist).
  void ResetState();

  const MailPropagator& propagator() const { return propagator_; }

 private:
  /// Lazily materializes the default all-nodes store (thread-safe
  /// creation; access synchronization stays the caller's contract, as
  /// it always was for the mailbox and z table).
  NodeStateStore& DefaultStore() const;

  ApanConfig config_;
  const graph::EdgeFeatureStore* features_;
  Rng rng_;
  graph::TemporalGraph graph_;
  mutable std::once_flag store_once_;
  mutable std::unique_ptr<NodeStateStore> store_;  // default all-nodes store
  ApanEncoder encoder_;
  LinkDecoder link_decoder_;
  EdgeDecoder edge_decoder_;
  NodeDecoder node_decoder_;
  MailPropagator propagator_;
  tensor::Tensor link_scale_;  // {1, 1} Eq. 7 calibration
  tensor::Tensor link_bias_;   // {1}
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_APAN_MODEL_H_
