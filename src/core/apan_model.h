// ApanModel — the full APAN system (paper Figure 3): per-node state
// z(t−), mailbox, attention encoder, task decoders, and mail propagator,
// wired to a TemporalGraph + EdgeFeatureStore.
//
// The synchronous path (EncodeNodes → decoder) touches only local state —
// node embeddings and mailboxes — and never queries the temporal graph;
// the test suite asserts this via TemporalGraph::query_count(). The
// asynchronous path (ProcessBatchPostInference) appends events to the
// graph and runs the propagator.

#ifndef APAN_CORE_APAN_MODEL_H_
#define APAN_CORE_APAN_MODEL_H_

#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/mailbox.h"
#include "core/propagator.h"
#include "graph/edge_features.h"
#include "graph/temporal_graph.h"
#include "nn/module.h"

namespace apan {
namespace core {

/// \brief End-to-end APAN over one graph.
class ApanModel : public nn::Module {
 public:
  /// `features` must outlive the model. The model owns its temporal graph
  /// (events are appended as the stream is consumed).
  ApanModel(const ApanConfig& config,
            const graph::EdgeFeatureStore* features, uint64_t seed);

  const ApanConfig& config() const { return config_; }
  graph::TemporalGraph& graph() { return graph_; }
  const graph::TemporalGraph& graph() const { return graph_; }
  Mailbox& mailbox() { return mailbox_; }
  ApanEncoder& encoder() { return encoder_; }
  LinkDecoder& link_decoder() { return link_decoder_; }
  EdgeDecoder& edge_decoder() { return edge_decoder_; }
  NodeDecoder& node_decoder() { return node_decoder_; }
  Rng* rng() { return &rng_; }

  // ---- Synchronous link ----------------------------------------------------

  /// Current stored embedding z(t−) of each node as a constant tensor.
  tensor::Tensor GatherLastEmbeddings(
      const std::vector<graph::NodeId>& nodes) const;

  /// \brief Encoder pass for a set of nodes: reads mailboxes + last
  /// embeddings, returns new embeddings (in the autograd graph when
  /// training) and attention weights. No graph queries.
  ApanEncoder::Output EncodeNodes(const std::vector<graph::NodeId>& nodes);

  /// \brief Link-prediction logits per the paper's Eq. 7: a scaled dot
  /// product σ(z_iᵀ z_j) with a learnable affine calibration. (The MLP
  /// decoders serve the downstream classification heads of §3.4.)
  /// \return {batch, 1} logits.
  tensor::Tensor ScoreLinkLogits(const tensor::Tensor& z_src,
                                 const tensor::Tensor& z_dst) const;

  // ---- Asynchronous link ---------------------------------------------------

  /// \brief Completes a batch after inference: stores detached embeddings
  /// as the nodes' new z(t−), runs mail propagation, and appends the
  /// events to the temporal graph. Equivalent to ApplyEmbeddings +
  /// propagator().Propagate + AppendEvents.
  /// \param records one entry per event, in timestamp order.
  /// \return first error from the graph append, if any.
  Status ProcessBatchPostInference(
      const std::vector<InteractionRecord>& records);

  /// Stage 1 of post-inference: stores each record's embeddings as the
  /// endpoints' new z(t−) (later records win on duplicates).
  void ApplyEmbeddings(const std::vector<InteractionRecord>& records);

  /// Stage 3 of post-inference: appends the events to the temporal graph.
  /// Must run *after* propagation sampling for the same batch, so that
  /// neighborhoods reflect the graph at batch start.
  Status AppendEvents(const std::vector<InteractionRecord>& records);

  /// Writes detached embedding values into the z(t−) table.
  void UpdateLastEmbeddings(const std::vector<graph::NodeId>& nodes,
                            const tensor::Tensor& embeddings);

  /// Raw read of one node's stored embedding (tests / examples).
  std::vector<float> LastEmbedding(graph::NodeId node) const;

  /// Raw write of one node's stored embedding z(t−). The sharded serving
  /// engine uses this to apply routed per-node state updates; `z` must
  /// hold embedding_dim floats.
  void SetLastEmbedding(graph::NodeId node, std::span<const float> z);

  // ---- Lifecycle -----------------------------------------------------------

  /// Zeroes all per-node state and drops all mail; resets the graph to
  /// empty. Called between training epochs (streaming state is epoch-local
  /// while weights persist).
  void ResetState();

  const MailPropagator& propagator() const { return propagator_; }

 private:
  ApanConfig config_;
  const graph::EdgeFeatureStore* features_;
  Rng rng_;
  graph::TemporalGraph graph_;
  Mailbox mailbox_;
  ApanEncoder encoder_;
  LinkDecoder link_decoder_;
  EdgeDecoder edge_decoder_;
  NodeDecoder node_decoder_;
  MailPropagator propagator_;
  tensor::Tensor link_scale_;  // {1, 1} Eq. 7 calibration
  tensor::Tensor link_bias_;   // {1}
  std::vector<float> state_;   // num_nodes * dim, z(t−) per node
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_APAN_MODEL_H_
