// MLP decoders for downstream tasks (paper §3.4).
//
// The encoder and propagator are task-agnostic; only the decoder changes:
//   link prediction     score(z_i ‖ z_j)
//   edge classification score(z_i ‖ e_ij ‖ z_j)
//   node classification score(z_i)
// Each head is a two-layer MLP producing one logit.

#ifndef APAN_CORE_DECODER_H_
#define APAN_CORE_DECODER_H_

#include "core/config.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace apan {
namespace core {

/// \brief Link-prediction head: p(edge | z_i, z_j).
class LinkDecoder : public nn::Module {
 public:
  LinkDecoder(int64_t embedding_dim, int64_t hidden, Rng* rng);

  /// \return logits {batch, 1}.
  tensor::Tensor Forward(const tensor::Tensor& z_src,
                         const tensor::Tensor& z_dst,
                         Rng* dropout_rng = nullptr) const;

 private:
  nn::Mlp mlp_;
};

/// \brief Edge-classification head: p(fraud | z_i, e_ij, z_j).
class EdgeDecoder : public nn::Module {
 public:
  EdgeDecoder(int64_t embedding_dim, int64_t feature_dim, int64_t hidden,
              Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& z_src,
                         const tensor::Tensor& edge_features,
                         const tensor::Tensor& z_dst,
                         Rng* dropout_rng = nullptr) const;

 private:
  nn::Mlp mlp_;
};

/// \brief Node-classification head: p(label | z_i).
class NodeDecoder : public nn::Module {
 public:
  NodeDecoder(int64_t embedding_dim, int64_t hidden, Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& z,
                         Rng* dropout_rng = nullptr) const;

 private:
  nn::Mlp mlp_;
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_DECODER_H_
