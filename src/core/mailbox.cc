#include "core/mailbox.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "nn/attention.h"
#include "obs/trace.h"

namespace apan {
namespace core {

// Thread contract: a Mailbox carries no lock — it is always reached
// through an exclusively-owned NodeStateStore, whose owner provides the
// synchronization (AsyncPipeline's model_mu_, or a ShardedEngine shard's
// state_mu / worker confinement; see util/thread_annotations.h and
// docs/static-analysis.md). Adding a mutex here would double-lock every
// delivery for no added safety.

Mailbox::Mailbox(int64_t num_nodes, int64_t slots, int64_t dim)
    : num_nodes_(num_nodes), slots_(slots), dim_(dim) {
  // num_nodes == 0 is a valid (empty) mailbox: a NodeStateStore for a
  // shard that happens to own no nodes still needs a well-formed slice.
  APAN_CHECK_MSG(num_nodes >= 0 && slots > 0 && dim > 0,
                 "Mailbox needs num_nodes >= 0 and positive slots/dim");
  data_.assign(static_cast<size_t>(num_nodes) * slots * dim, 0.0f);
  timestamps_.assign(static_cast<size_t>(num_nodes) * slots, 0.0);
  head_.assign(static_cast<size_t>(num_nodes), 0);
  count_.assign(static_cast<size_t>(num_nodes), 0);
  order_.assign(static_cast<size_t>(num_nodes) * slots, 0);
}

void Mailbox::InsertIntoOrder(size_t n, int32_t slot, double timestamp,
                              int32_t valid) {
  // One insertion-sort step against the already-sorted prefix. The new
  // slot is the latest arrival, so it goes after every entry with
  // timestamp <= its own — exactly where the old stable sort-on-read
  // (stable on arrival order) would place it.
  int32_t* row = order_.data() + n * static_cast<size_t>(slots_);
  const double* ts = timestamps_.data() + n * static_cast<size_t>(slots_);
  int32_t i = valid;
  while (i > 0 && ts[row[i - 1]] > timestamp) {
    row[i] = row[i - 1];
    --i;
  }
  row[i] = slot;
}

void Mailbox::RemoveFromOrder(size_t n, int32_t slot, int32_t valid) {
  int32_t* row = order_.data() + n * static_cast<size_t>(slots_);
  int32_t i = 0;
  while (i < valid && row[i] != slot) ++i;
  APAN_CHECK_MSG(i < valid, "evicted slot missing from mailbox order");
  for (; i + 1 < valid; ++i) row[i] = row[i + 1];
}

void Mailbox::Deliver(graph::NodeId node, std::span<const float> mail,
                      double timestamp) {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  APAN_CHECK_MSG(static_cast<int64_t>(mail.size()) == dim_,
                 "mail dimension mismatch");
  const auto n = static_cast<size_t>(node);
  int64_t slot;
  if (count_[n] < slots_) {
    slot = (head_[n] + count_[n]) % slots_;
    ++count_[n];
    InsertIntoOrder(n, static_cast<int32_t>(slot), timestamp, count_[n] - 1);
  } else {
    slot = head_[n];  // evict oldest
    head_[n] = static_cast<int32_t>((head_[n] + 1) % slots_);
    RemoveFromOrder(n, static_cast<int32_t>(slot),
                    static_cast<int32_t>(slots_));
    InsertIntoOrder(n, static_cast<int32_t>(slot), timestamp,
                    static_cast<int32_t>(slots_) - 1);
  }
  std::copy(mail.begin(), mail.end(), data_.begin() + SlotOffset(node, slot));
  timestamps_[n * static_cast<size_t>(slots_) + static_cast<size_t>(slot)] =
      timestamp;
}

int64_t Mailbox::DeliverBatch(std::span<const MailDelivery> deliveries) {
  if (deliveries.empty()) return 0;
  // Stable grouping by recipient: mails for one node stay in span order.
  std::vector<int64_t> idx(deliveries.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
    return deliveries[static_cast<size_t>(a)].recipient <
           deliveries[static_cast<size_t>(b)].recipient;
  });

  size_t i = 0;
  while (i < idx.size()) {
    const graph::NodeId node =
        deliveries[static_cast<size_t>(idx[i])].recipient;
    APAN_CHECK_MSG(node >= 0 && node < num_nodes_,
                   "mailbox node out of range");
    const auto n = static_cast<size_t>(node);
    // Ring bookkeeping loaded once per recipient group.
    int32_t head = head_[n];
    int32_t count = count_[n];
    const size_t base = n * static_cast<size_t>(slots_ * dim_);
    for (; i < idx.size() &&
           deliveries[static_cast<size_t>(idx[i])].recipient == node;
         ++i) {
      const MailDelivery& d = deliveries[static_cast<size_t>(idx[i])];
      APAN_CHECK_MSG(static_cast<int64_t>(d.mail.size()) == dim_,
                     "mail dimension mismatch");
      int64_t slot;
      if (count < slots_) {
        slot = (head + count) % slots_;
        ++count;
        InsertIntoOrder(n, static_cast<int32_t>(slot), d.timestamp,
                        count - 1);
      } else {
        slot = head;  // evict oldest
        head = static_cast<int32_t>((head + 1) % slots_);
        RemoveFromOrder(n, static_cast<int32_t>(slot),
                        static_cast<int32_t>(slots_));
        InsertIntoOrder(n, static_cast<int32_t>(slot), d.timestamp,
                        static_cast<int32_t>(slots_) - 1);
      }
      std::copy(d.mail.begin(), d.mail.end(),
                data_.begin() + base +
                    static_cast<size_t>(slot) * static_cast<size_t>(dim_));
      timestamps_[n * static_cast<size_t>(slots_) +
                  static_cast<size_t>(slot)] = d.timestamp;
    }
    head_[n] = head;
    count_[n] = count;
  }
  return static_cast<int64_t>(deliveries.size());
}

int64_t Mailbox::ValidCount(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  return count_[static_cast<size_t>(node)];
}

double Mailbox::NewestTimestamp(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  const auto n = static_cast<size_t>(node);
  if (count_[n] == 0) return -std::numeric_limits<double>::infinity();
  // The sorted permutation's last valid entry is the newest timestamp.
  const int32_t slot =
      order_[n * static_cast<size_t>(slots_) +
             static_cast<size_t>(count_[n] - 1)];
  return timestamps_[n * static_cast<size_t>(slots_) +
                     static_cast<size_t>(slot)];
}

std::span<const float> Mailbox::RawSlot(graph::NodeId node,
                                        int64_t slot) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  APAN_CHECK_MSG(slot >= 0 && slot < slots_, "mailbox slot out of range");
  return {data_.data() + SlotOffset(node, slot), static_cast<size_t>(dim_)};
}

Mailbox::ReadResult Mailbox::ReadBatch(
    const std::vector<graph::NodeId>& nodes) const {
  // Formerly the known non-kernel hot spot (per-node sort-on-read); now a
  // straight gather through the write-maintained slot permutation. Still
  // traced so a Perfetto view shows how much of each encode it eats.
  APAN_TRACE_SPAN("mailbox_read");
  const int64_t batch = static_cast<int64_t>(nodes.size());
  ReadResult result;
  std::vector<float> out(static_cast<size_t>(batch * slots_ * dim_), 0.0f);
  result.mask.assign(static_cast<size_t>(batch * slots_), 0.0f);
  result.counts.resize(static_cast<size_t>(batch));
  result.timestamps.assign(static_cast<size_t>(batch * slots_), 0.0);

  for (int64_t b = 0; b < batch; ++b) {
    const graph::NodeId node = nodes[static_cast<size_t>(b)];
    APAN_CHECK_MSG(node >= 0 && node < num_nodes_,
                   "mailbox node out of range");
    const auto n = static_cast<size_t>(node);
    const int32_t c = count_[n];
    result.counts[static_cast<size_t>(b)] = c;

    // Valid slots in (timestamp, arrival) order — maintained at delivery
    // time, so the out-of-order tolerance costs nothing here.
    const int32_t* order = order_.data() + n * static_cast<size_t>(slots_);
    for (int32_t pos = 0; pos < c; ++pos) {
      std::copy_n(data_.data() + SlotOffset(node, order[pos]), dim_,
                  out.data() + (b * slots_ + pos) * dim_);
      result.timestamps[static_cast<size_t>(b * slots_ + pos)] =
          timestamps_[n * static_cast<size_t>(slots_) +
                      static_cast<size_t>(order[pos])];
    }
    // Mask padding slots — except for fully-empty mailboxes, which keep an
    // all-valid mask so softmax stays a well-conditioned uniform.
    if (c > 0) {
      for (int64_t pos = c; pos < slots_; ++pos) {
        result.mask[static_cast<size_t>(b * slots_ + pos)] =
            nn::MultiHeadAttention::kMaskedOut;
      }
    }
  }
  result.mails =
      tensor::Tensor::FromVector({batch, slots_, dim_}, std::move(out));
  return result;
}

Status Mailbox::RestoreRaw(std::span<const float> data,
                           std::span<const double> timestamps,
                           std::span<const int32_t> head,
                           std::span<const int32_t> count,
                           std::span<const int32_t> order) {
  const auto nodes = static_cast<size_t>(num_nodes_);
  const auto slots = static_cast<size_t>(slots_);
  if (data.size() != nodes * slots * static_cast<size_t>(dim_) ||
      timestamps.size() != nodes * slots || head.size() != nodes ||
      count.size() != nodes || order.size() != nodes * slots) {
    return Status::InvalidArgument(
        "mailbox restore: span sizes do not match this mailbox's "
        "num_nodes/slots/dim geometry");
  }
  // Validate every node's ring invariants BEFORE touching any storage so
  // a rejected restore leaves the mailbox exactly as it was.
  std::vector<bool> seen(slots);
  for (size_t n = 0; n < nodes; ++n) {
    if (head[n] < 0 || head[n] >= slots_) {
      return Status::InvalidArgument(internal::StrCat(
          "mailbox restore: node ", n, " ring head ", head[n],
          " outside [0, ", slots_, ")"));
    }
    if (count[n] < 0 || count[n] > slots_) {
      return Status::InvalidArgument(internal::StrCat(
          "mailbox restore: node ", n, " valid count ", count[n],
          " outside [0, ", slots_, "]"));
    }
    // The first count[n] permutation entries must be distinct valid slot
    // ids sorted by timestamp (ties broken by arrival at write time, so
    // non-decreasing is the checkable invariant).
    std::fill(seen.begin(), seen.end(), false);
    const int32_t* row = order.data() + n * slots;
    const double* ts = timestamps.data() + n * slots;
    for (int32_t i = 0; i < count[n]; ++i) {
      const int32_t slot = row[i];
      if (slot < 0 || slot >= slots_) {
        return Status::InvalidArgument(internal::StrCat(
            "mailbox restore: node ", n, " order entry ", i, " names slot ",
            slot, " outside [0, ", slots_, ")"));
      }
      if (seen[static_cast<size_t>(slot)]) {
        return Status::InvalidArgument(internal::StrCat(
            "mailbox restore: node ", n, " order repeats slot ", slot));
      }
      seen[static_cast<size_t>(slot)] = true;
      if (i > 0 && ts[row[i - 1]] > ts[slot]) {
        return Status::InvalidArgument(internal::StrCat(
            "mailbox restore: node ", n, " order is not time-sorted at ",
            "entry ", i));
      }
    }
  }
  data_.assign(data.begin(), data.end());
  timestamps_.assign(timestamps.begin(), timestamps.end());
  head_.assign(head.begin(), head.end());
  count_.assign(count.begin(), count.end());
  order_.assign(order.begin(), order.end());
  return Status::OK();
}

void Mailbox::Clear() {
  std::fill(data_.begin(), data_.end(), 0.0f);
  std::fill(timestamps_.begin(), timestamps_.end(), 0.0);
  std::fill(head_.begin(), head_.end(), 0);
  std::fill(count_.begin(), count_.end(), 0);
  std::fill(order_.begin(), order_.end(), 0);
}

}  // namespace core
}  // namespace apan
