#include "core/mailbox.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "nn/attention.h"
#include "obs/trace.h"

namespace apan {
namespace core {

// Thread contract: a Mailbox carries no lock — it is always reached
// through an exclusively-owned NodeStateStore, whose owner provides the
// synchronization (AsyncPipeline's model_mu_, or a ShardedEngine shard's
// state_mu / worker confinement; see util/thread_annotations.h and
// docs/static-analysis.md). Adding a mutex here would double-lock every
// delivery for no added safety.

Mailbox::Mailbox(int64_t num_nodes, int64_t slots, int64_t dim)
    : num_nodes_(num_nodes), slots_(slots), dim_(dim) {
  // num_nodes == 0 is a valid (empty) mailbox: a NodeStateStore for a
  // shard that happens to own no nodes still needs a well-formed slice.
  APAN_CHECK_MSG(num_nodes >= 0 && slots > 0 && dim > 0,
                 "Mailbox needs num_nodes >= 0 and positive slots/dim");
  data_.assign(static_cast<size_t>(num_nodes) * slots * dim, 0.0f);
  timestamps_.assign(static_cast<size_t>(num_nodes) * slots, 0.0);
  head_.assign(static_cast<size_t>(num_nodes), 0);
  count_.assign(static_cast<size_t>(num_nodes), 0);
}

void Mailbox::Deliver(graph::NodeId node, std::span<const float> mail,
                      double timestamp) {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  APAN_CHECK_MSG(static_cast<int64_t>(mail.size()) == dim_,
                 "mail dimension mismatch");
  const auto n = static_cast<size_t>(node);
  int64_t slot;
  if (count_[n] < slots_) {
    slot = (head_[n] + count_[n]) % slots_;
    ++count_[n];
  } else {
    slot = head_[n];  // evict oldest
    head_[n] = static_cast<int32_t>((head_[n] + 1) % slots_);
  }
  std::copy(mail.begin(), mail.end(), data_.begin() + SlotOffset(node, slot));
  timestamps_[n * static_cast<size_t>(slots_) + static_cast<size_t>(slot)] =
      timestamp;
}

int64_t Mailbox::DeliverBatch(std::span<const MailDelivery> deliveries) {
  if (deliveries.empty()) return 0;
  // Stable grouping by recipient: mails for one node stay in span order.
  std::vector<int64_t> idx(deliveries.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
    return deliveries[static_cast<size_t>(a)].recipient <
           deliveries[static_cast<size_t>(b)].recipient;
  });

  size_t i = 0;
  while (i < idx.size()) {
    const graph::NodeId node =
        deliveries[static_cast<size_t>(idx[i])].recipient;
    APAN_CHECK_MSG(node >= 0 && node < num_nodes_,
                   "mailbox node out of range");
    const auto n = static_cast<size_t>(node);
    // Ring bookkeeping loaded once per recipient group.
    int32_t head = head_[n];
    int32_t count = count_[n];
    const size_t base = n * static_cast<size_t>(slots_ * dim_);
    for (; i < idx.size() &&
           deliveries[static_cast<size_t>(idx[i])].recipient == node;
         ++i) {
      const MailDelivery& d = deliveries[static_cast<size_t>(idx[i])];
      APAN_CHECK_MSG(static_cast<int64_t>(d.mail.size()) == dim_,
                     "mail dimension mismatch");
      int64_t slot;
      if (count < slots_) {
        slot = (head + count) % slots_;
        ++count;
      } else {
        slot = head;  // evict oldest
        head = static_cast<int32_t>((head + 1) % slots_);
      }
      std::copy(d.mail.begin(), d.mail.end(),
                data_.begin() + base +
                    static_cast<size_t>(slot) * static_cast<size_t>(dim_));
      timestamps_[n * static_cast<size_t>(slots_) +
                  static_cast<size_t>(slot)] = d.timestamp;
    }
    head_[n] = head;
    count_[n] = count;
  }
  return static_cast<int64_t>(deliveries.size());
}

int64_t Mailbox::ValidCount(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  return count_[static_cast<size_t>(node)];
}

double Mailbox::NewestTimestamp(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  const auto n = static_cast<size_t>(node);
  if (count_[n] == 0) return -std::numeric_limits<double>::infinity();
  double newest = -std::numeric_limits<double>::infinity();
  for (int32_t i = 0; i < count_[n]; ++i) {
    const int64_t slot = (head_[n] + i) % slots_;
    newest = std::max(
        newest,
        timestamps_[n * static_cast<size_t>(slots_) +
                    static_cast<size_t>(slot)]);
  }
  return newest;
}

std::span<const float> Mailbox::RawSlot(graph::NodeId node,
                                        int64_t slot) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_, "mailbox node out of range");
  APAN_CHECK_MSG(slot >= 0 && slot < slots_, "mailbox slot out of range");
  return {data_.data() + SlotOffset(node, slot), static_cast<size_t>(dim_)};
}

Mailbox::ReadResult Mailbox::ReadBatch(
    const std::vector<graph::NodeId>& nodes) const {
  // The known non-kernel hot spot (per-node sort-on-read); traced so a
  // Perfetto view shows how much of each encode it eats.
  APAN_TRACE_SPAN("mailbox_read");
  const int64_t batch = static_cast<int64_t>(nodes.size());
  APAN_CHECK_MSG(batch > 0, "ReadBatch on empty node list");
  ReadResult result;
  std::vector<float> out(static_cast<size_t>(batch * slots_ * dim_), 0.0f);
  result.mask.assign(static_cast<size_t>(batch * slots_), 0.0f);
  result.counts.resize(static_cast<size_t>(batch));
  result.timestamps.assign(static_cast<size_t>(batch * slots_), 0.0);

  std::vector<int64_t> order;
  for (int64_t b = 0; b < batch; ++b) {
    const graph::NodeId node = nodes[static_cast<size_t>(b)];
    APAN_CHECK_MSG(node >= 0 && node < num_nodes_,
                   "mailbox node out of range");
    const auto n = static_cast<size_t>(node);
    const int32_t c = count_[n];
    result.counts[static_cast<size_t>(b)] = c;

    // Sort valid slots by timestamp ascending (stable on arrival order) —
    // the sort-on-read that makes out-of-order delivery harmless.
    order.resize(static_cast<size_t>(c));
    for (int32_t i = 0; i < c; ++i) {
      order[static_cast<size_t>(i)] = (head_[n] + i) % slots_;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](int64_t a, int64_t b2) {
                       return timestamps_[n * slots_ + a] <
                              timestamps_[n * slots_ + b2];
                     });

    for (int64_t pos = 0; pos < static_cast<int64_t>(order.size()); ++pos) {
      std::copy_n(data_.data() + SlotOffset(node, order[pos]), dim_,
                  out.data() + (b * slots_ + pos) * dim_);
      result.timestamps[static_cast<size_t>(b * slots_ + pos)] =
          timestamps_[n * static_cast<size_t>(slots_) +
                      static_cast<size_t>(order[pos])];
    }
    // Mask padding slots — except for fully-empty mailboxes, which keep an
    // all-valid mask so softmax stays a well-conditioned uniform.
    if (c > 0) {
      for (int64_t pos = c; pos < slots_; ++pos) {
        result.mask[static_cast<size_t>(b * slots_ + pos)] =
            nn::MultiHeadAttention::kMaskedOut;
      }
    }
  }
  result.mails =
      tensor::Tensor::FromVector({batch, slots_, dim_}, std::move(out));
  return result;
}

void Mailbox::Clear() {
  std::fill(data_.begin(), data_.end(), 0.0f);
  std::fill(timestamps_.begin(), timestamps_.end(), 0.0);
  std::fill(head_.begin(), head_.end(), 0);
  std::fill(count_.begin(), count_.end(), 0);
}

}  // namespace core
}  // namespace apan
