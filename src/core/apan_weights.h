// Read-only serve-time view of ApanModel's replicable weights.
//
// APAN's serve-time parameters — the attention encoder, the task
// decoders, and the Eq. 7 link calibration — are small, immutable during
// serving, and identical for every node, so a distributed deployment
// replicates them on every shard and partitions only the mutable node
// state (core::NodeStateStore). ApanWeights is that split expressed in
// the type system: a const-only view that can score and encode against
// any caller-supplied state store but cannot touch the model's mutable
// state. serve::ShardedEngine holds the model exclusively through this
// view while running.

#ifndef APAN_CORE_APAN_WEIGHTS_H_
#define APAN_CORE_APAN_WEIGHTS_H_

#include <vector>

#include "core/config.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/propagator.h"
#include "graph/temporal_graph.h"
#include "tensor/tensor.h"

namespace apan {
namespace core {

class NodeStateStore;

/// \brief Non-owning const view over one ApanModel's weights. Copyable;
/// the model must outlive every view.
class ApanWeights {
 public:
  ApanWeights(const ApanConfig* config, const ApanEncoder* encoder,
              const LinkDecoder* link_decoder, const EdgeDecoder* edge_decoder,
              const NodeDecoder* node_decoder, const MailPropagator* propagator,
              const tensor::Tensor* link_scale,
              const tensor::Tensor* link_bias);

  const ApanConfig& config() const { return *config_; }
  const ApanEncoder& encoder() const { return *encoder_; }
  const LinkDecoder& link_decoder() const { return *link_decoder_; }
  const EdgeDecoder& edge_decoder() const { return *edge_decoder_; }
  const NodeDecoder& node_decoder() const { return *node_decoder_; }
  const MailPropagator& propagator() const { return *propagator_; }

  /// Encoder pass over `store`'s rows (serve-time: no dropout RNG). The
  /// store must own every node in `nodes`.
  ApanEncoder::Output EncodeNodes(const NodeStateStore& store,
                                  const std::vector<graph::NodeId>& nodes) const;

  /// Link-prediction logits per the paper's Eq. 7: scaled dot product
  /// with the learnable affine calibration. \return {batch, 1} logits.
  tensor::Tensor ScoreLinkLogits(const tensor::Tensor& z_src,
                                 const tensor::Tensor& z_dst) const;

 private:
  const ApanConfig* config_;
  const ApanEncoder* encoder_;
  const LinkDecoder* link_decoder_;
  const EdgeDecoder* edge_decoder_;
  const NodeDecoder* node_decoder_;
  const MailPropagator* propagator_;
  const tensor::Tensor* link_scale_;
  const tensor::Tensor* link_bias_;
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_APAN_WEIGHTS_H_
