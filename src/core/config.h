// Configuration of the APAN model (paper §4.4 defaults).

#ifndef APAN_CORE_CONFIG_H_
#define APAN_CORE_CONFIG_H_

#include <cstdint>

#include "util/status.h"

namespace apan {
namespace core {

/// How mailbox slots are position-encoded before attention (paper §3.3;
/// §3.6 proposes the TGAT time kernel as a drop-in replacement).
enum class PositionalMode {
  kLearnedPosition,  ///< One trainable vector per time-sorted slot (§3.3).
  kTimeKernel,       ///< Bochner encoding of (newest mail time − mail time).
};

/// Which neighbors receive propagated mails (paper §3.5 argues for
/// most-recent; uniform is the GraphSAGE-style alternative it rejects).
enum class PropagationSampling {
  kMostRecent,
  kUniform,
};

/// \brief Hyper-parameters of APAN.
///
/// The embedding dimension is fixed to the edge feature dimension (paper
/// §3.5: mails are the *sum* z_i + e_ij + z_j, which requires all three to
/// share one dimension — "the node embedding dimension of APAN is fixed as
/// the original edge feature dimension, so it is not a hyper-parameter").
struct ApanConfig {
  int64_t num_nodes = 0;
  int64_t embedding_dim = 0;   ///< = edge feature dim.
  int64_t num_heads = 2;       ///< Attention heads (§4.4).
  int64_t mailbox_slots = 10;  ///< m, mails kept per node (§4.4).
  int64_t sampled_neighbors = 10;  ///< Most-recent fanout per hop (§4.4).
  int32_t propagation_hops = 2;    ///< k, message passing layers (§4.4).
  int64_t mlp_hidden = 80;     ///< Hidden width of encoder/decoder MLPs.
  float dropout = 0.1f;
  PositionalMode positional = PositionalMode::kLearnedPosition;
  PropagationSampling sampling = PropagationSampling::kMostRecent;

  /// \return InvalidArgument describing the first violated constraint.
  Status Validate() const {
    if (num_nodes <= 0) {
      return Status::InvalidArgument("num_nodes must be positive");
    }
    if (embedding_dim <= 0) {
      return Status::InvalidArgument("embedding_dim must be positive");
    }
    if (num_heads <= 0 || embedding_dim % num_heads != 0) {
      return Status::InvalidArgument(
          "num_heads must divide embedding_dim");
    }
    if (mailbox_slots <= 0) {
      return Status::InvalidArgument("mailbox_slots must be positive");
    }
    if (sampled_neighbors <= 0) {
      return Status::InvalidArgument("sampled_neighbors must be positive");
    }
    if (propagation_hops < 0) {
      return Status::InvalidArgument("propagation_hops must be >= 0");
    }
    if (mlp_hidden <= 0) {
      return Status::InvalidArgument("mlp_hidden must be positive");
    }
    if (dropout < 0.0f || dropout >= 1.0f) {
      return Status::InvalidArgument("dropout must be in [0, 1)");
    }
    return Status::OK();
  }
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_CONFIG_H_
