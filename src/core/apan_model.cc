#include "core/apan_model.h"

#include "tensor/ops.h"

namespace apan {
namespace core {

using tensor::Tensor;

ApanModel::ApanModel(const ApanConfig& config,
                     const graph::EdgeFeatureStore* features, uint64_t seed)
    : config_(config),
      features_(features),
      rng_(seed),
      graph_(config.num_nodes),
      encoder_(config, &rng_),
      link_decoder_(config.embedding_dim, config.mlp_hidden, &rng_),
      edge_decoder_(config.embedding_dim,
                    features != nullptr ? features->dim()
                                        : config.embedding_dim,
                    config.mlp_hidden, &rng_),
      node_decoder_(config.embedding_dim, config.mlp_hidden, &rng_),
      propagator_(config, &graph_, features) {
  APAN_CHECK(features != nullptr);
  APAN_CHECK_MSG(features->dim() == config.embedding_dim,
                 "APAN requires embedding_dim == edge feature dim");
  link_scale_ = Tensor::Ones({1, 1}, /*requires_grad=*/true);
  link_bias_ = Tensor::Zeros({1}, /*requires_grad=*/true);
  RegisterParameter(link_scale_);
  RegisterParameter(link_bias_);
  RegisterChild(&encoder_);
  RegisterChild(&link_decoder_);
  RegisterChild(&edge_decoder_);
  RegisterChild(&node_decoder_);
}

NodeStateStore& ApanModel::DefaultStore() const {
  std::call_once(store_once_, [this] {
    store_ = std::make_unique<NodeStateStore>(
        config_.num_nodes, config_.mailbox_slots, config_.embedding_dim);
  });
  return *store_;
}

ApanWeights ApanModel::weights() const {
  return ApanWeights(&config_, &encoder_, &link_decoder_, &edge_decoder_,
                     &node_decoder_, &propagator_, &link_scale_, &link_bias_);
}

Tensor ApanModel::ScoreLinkLogits(const Tensor& z_src,
                                  const Tensor& z_dst) const {
  return weights().ScoreLinkLogits(z_src, z_dst);
}

Tensor ApanModel::GatherLastEmbeddings(
    const std::vector<graph::NodeId>& nodes) const {
  return DefaultStore().GatherLastEmbeddings(nodes);
}

ApanEncoder::Output ApanModel::EncodeNodes(
    const std::vector<graph::NodeId>& nodes) {
  return encoder_.EncodeNodes(DefaultStore(), nodes, &rng_);
}

void ApanModel::UpdateLastEmbeddings(
    const std::vector<graph::NodeId>& nodes, const Tensor& embeddings) {
  DefaultStore().UpdateLastEmbeddings(nodes, embeddings);
}

std::vector<float> ApanModel::LastEmbedding(graph::NodeId node) const {
  return DefaultStore().LastEmbedding(node);
}

void ApanModel::SetLastEmbedding(graph::NodeId node,
                                 std::span<const float> z) {
  DefaultStore().SetLastEmbedding(node, z);
}

void ApanModel::ApplyEmbeddings(
    const std::vector<InteractionRecord>& records) {
  // When a node appears several times in a batch, the later record (newer
  // timestamp) wins — records are required to be time-ordered.
  NodeStateStore& store = DefaultStore();
  for (const InteractionRecord& r : records) {
    store.SetLastEmbedding(r.event.src, r.z_src);
    store.SetLastEmbedding(r.event.dst, r.z_dst);
  }
}

Status ApanModel::AppendEvents(
    const std::vector<InteractionRecord>& records) {
  for (const InteractionRecord& r : records) {
    APAN_RETURN_NOT_OK(graph_.AddEvent(r.event));
  }
  return Status::OK();
}

Status ApanModel::ProcessBatchPostInference(
    const std::vector<InteractionRecord>& records) {
  ApplyEmbeddings(records);
  // Propagation samples neighborhoods before the batch's edges are
  // appended, so they reflect the graph at batch start — endpoints still
  // receive their own mail directly (hop 0).
  propagator_.Propagate(records, &DefaultStore().mailbox());
  return AppendEvents(records);
}

void ApanModel::ResetState() {
  // Reset without materializing: an unallocated store is already reset.
  if (store_ != nullptr) store_->Reset();
  graph_.Reset();
}

}  // namespace core
}  // namespace apan
