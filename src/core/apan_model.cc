#include "core/apan_model.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace apan {
namespace core {

using tensor::Tensor;

ApanModel::ApanModel(const ApanConfig& config,
                     const graph::EdgeFeatureStore* features, uint64_t seed)
    : config_(config),
      features_(features),
      rng_(seed),
      graph_(config.num_nodes),
      mailbox_(config.num_nodes, config.mailbox_slots, config.embedding_dim),
      encoder_(config, &rng_),
      link_decoder_(config.embedding_dim, config.mlp_hidden, &rng_),
      edge_decoder_(config.embedding_dim,
                    features != nullptr ? features->dim()
                                        : config.embedding_dim,
                    config.mlp_hidden, &rng_),
      node_decoder_(config.embedding_dim, config.mlp_hidden, &rng_),
      propagator_(config, &graph_, features),
      state_(static_cast<size_t>(config.num_nodes * config.embedding_dim),
             0.0f) {
  APAN_CHECK(features != nullptr);
  APAN_CHECK_MSG(features->dim() == config.embedding_dim,
                 "APAN requires embedding_dim == edge feature dim");
  link_scale_ = Tensor::Ones({1, 1}, /*requires_grad=*/true);
  link_bias_ = Tensor::Zeros({1}, /*requires_grad=*/true);
  RegisterParameter(link_scale_);
  RegisterParameter(link_bias_);
  RegisterChild(&encoder_);
  RegisterChild(&link_decoder_);
  RegisterChild(&edge_decoder_);
  RegisterChild(&node_decoder_);
}

Tensor ApanModel::ScoreLinkLogits(const Tensor& z_src,
                                  const Tensor& z_dst) const {
  const float inv_sqrt_d =
      1.0f / std::sqrt(static_cast<float>(config_.embedding_dim));
  Tensor dot =
      tensor::MulScalar(tensor::RowwiseDot(z_src, z_dst), inv_sqrt_d);
  return tensor::Add(tensor::MatMul(dot, link_scale_), link_bias_);
}

Tensor ApanModel::GatherLastEmbeddings(
    const std::vector<graph::NodeId>& nodes) const {
  const int64_t d = config_.embedding_dim;
  std::vector<float> out(nodes.size() * static_cast<size_t>(d));
  for (size_t i = 0; i < nodes.size(); ++i) {
    const graph::NodeId v = nodes[i];
    APAN_CHECK_MSG(v >= 0 && v < config_.num_nodes,
                   "node id out of range in GatherLastEmbeddings");
    std::copy_n(state_.data() + static_cast<size_t>(v * d), d,
                out.data() + i * static_cast<size_t>(d));
  }
  return Tensor::FromVector({static_cast<int64_t>(nodes.size()), d},
                            std::move(out));
}

ApanEncoder::Output ApanModel::EncodeNodes(
    const std::vector<graph::NodeId>& nodes) {
  APAN_CHECK_MSG(!nodes.empty(), "EncodeNodes on empty node list");
  const Tensor last = GatherLastEmbeddings(nodes);
  const Mailbox::ReadResult read = mailbox_.ReadBatch(nodes);
  return encoder_.Forward(last, read, &rng_);
}

void ApanModel::UpdateLastEmbeddings(
    const std::vector<graph::NodeId>& nodes, const Tensor& embeddings) {
  const int64_t d = config_.embedding_dim;
  APAN_CHECK(embeddings.defined() && embeddings.rank() == 2);
  APAN_CHECK(embeddings.dim(0) == static_cast<int64_t>(nodes.size()) &&
             embeddings.dim(1) == d);
  const float* src = embeddings.data();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const graph::NodeId v = nodes[i];
    APAN_CHECK_MSG(v >= 0 && v < config_.num_nodes,
                   "node id out of range in UpdateLastEmbeddings");
    std::copy_n(src + i * static_cast<size_t>(d), d,
                state_.data() + static_cast<size_t>(v * d));
  }
}

std::vector<float> ApanModel::LastEmbedding(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < config_.num_nodes,
                 "node id out of range");
  const int64_t d = config_.embedding_dim;
  return std::vector<float>(
      state_.begin() + static_cast<size_t>(node * d),
      state_.begin() + static_cast<size_t>((node + 1) * d));
}

void ApanModel::SetLastEmbedding(graph::NodeId node,
                                 std::span<const float> z) {
  APAN_CHECK_MSG(node >= 0 && node < config_.num_nodes,
                 "node id out of range");
  APAN_CHECK_MSG(static_cast<int64_t>(z.size()) == config_.embedding_dim,
                 "embedding dimension mismatch");
  std::copy(z.begin(), z.end(),
            state_.begin() +
                static_cast<size_t>(node * config_.embedding_dim));
}

void ApanModel::ApplyEmbeddings(
    const std::vector<InteractionRecord>& records) {
  // When a node appears several times in a batch, the later record (newer
  // timestamp) wins — records are required to be time-ordered.
  const int64_t d = config_.embedding_dim;
  for (const InteractionRecord& r : records) {
    APAN_CHECK(static_cast<int64_t>(r.z_src.size()) == d &&
               static_cast<int64_t>(r.z_dst.size()) == d);
    std::copy(r.z_src.begin(), r.z_src.end(),
              state_.begin() + static_cast<size_t>(r.event.src * d));
    std::copy(r.z_dst.begin(), r.z_dst.end(),
              state_.begin() + static_cast<size_t>(r.event.dst * d));
  }
}

Status ApanModel::AppendEvents(
    const std::vector<InteractionRecord>& records) {
  for (const InteractionRecord& r : records) {
    APAN_RETURN_NOT_OK(graph_.AddEvent(r.event));
  }
  return Status::OK();
}

Status ApanModel::ProcessBatchPostInference(
    const std::vector<InteractionRecord>& records) {
  ApplyEmbeddings(records);
  // Propagation samples neighborhoods before the batch's edges are
  // appended, so they reflect the graph at batch start — endpoints still
  // receive their own mail directly (hop 0).
  propagator_.Propagate(records, &mailbox_);
  return AppendEvents(records);
}

void ApanModel::ResetState() {
  std::fill(state_.begin(), state_.end(), 0.0f);
  mailbox_.Clear();
  graph_.Reset();
}

}  // namespace core
}  // namespace apan
