#include "core/encoder.h"

#include "core/node_state_store.h"
#include "tensor/ops.h"

namespace apan {
namespace core {

using tensor::Tensor;

ApanEncoder::ApanEncoder(const ApanConfig& config, Rng* rng)
    : dim_(config.embedding_dim),
      slots_(config.mailbox_slots),
      dropout_(config.dropout),
      positional_mode_(config.positional),
      positional_(config.mailbox_slots, config.embedding_dim, rng),
      time_positional_(config.embedding_dim, rng),
      attention_(config.embedding_dim, config.num_heads, rng),
      layer_norm_(config.embedding_dim),
      mlp_(config.embedding_dim, config.mlp_hidden, config.embedding_dim,
           rng, config.dropout) {
  APAN_CHECK(config.Validate().ok());
  if (positional_mode_ == PositionalMode::kLearnedPosition) {
    RegisterChild(&positional_);
  } else {
    RegisterChild(&time_positional_);
  }
  RegisterChild(&attention_);
  RegisterChild(&layer_norm_);
  RegisterChild(&mlp_);
}

ApanEncoder::Output ApanEncoder::EncodeNodes(
    const NodeStateStore& store, const std::vector<graph::NodeId>& nodes,
    Rng* dropout_rng) const {
  APAN_CHECK_MSG(!nodes.empty(), "EncodeNodes on empty node list");
  const Tensor last = store.GatherLastEmbeddings(nodes);
  const Mailbox::ReadResult read = store.ReadBatch(nodes);
  return Forward(last, read, dropout_rng);
}

ApanEncoder::Output ApanEncoder::Forward(
    const Tensor& last_embeddings, const Mailbox::ReadResult& mailbox_read,
    Rng* dropout_rng) const {
  APAN_CHECK(last_embeddings.defined());
  APAN_CHECK_MSG(last_embeddings.rank() == 2 &&
                     last_embeddings.dim(1) == dim_,
                 "encoder expects {batch, dim} last embeddings");
  const Tensor& mails = mailbox_read.mails;
  APAN_CHECK_MSG(mails.rank() == 3 && mails.dim(1) == slots_ &&
                     mails.dim(2) == dim_,
                 "encoder mailbox tensor shape mismatch");
  const int64_t batch = last_embeddings.dim(0);
  APAN_CHECK(mails.dim(0) == batch);

  Tensor flat = tensor::Reshape(mails, {batch * slots_, dim_});
  Tensor pos;
  if (positional_mode_ == PositionalMode::kLearnedPosition) {
    // Positional encoding (Eq. 2): slot position p (time-sorted order)
    // gets row p of the learnable table, identically per batch element.
    std::vector<int64_t> position_ids(static_cast<size_t>(batch * slots_));
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t p = 0; p < slots_; ++p) {
        position_ids[static_cast<size_t>(b * slots_ + p)] = p;
      }
    }
    pos = positional_.Forward(position_ids);  // {b*m, d}
  } else {
    // §3.6 extension: Bochner time kernel over (newest mail − mail) age.
    APAN_CHECK_MSG(
        mailbox_read.timestamps.size() ==
            static_cast<size_t>(batch * slots_),
        "time-kernel positional mode needs mailbox timestamps");
    std::vector<double> deltas(static_cast<size_t>(batch * slots_), 0.0);
    for (int64_t b = 0; b < batch; ++b) {
      const int64_t c = mailbox_read.counts[static_cast<size_t>(b)];
      if (c == 0) continue;
      const double newest =
          mailbox_read.timestamps[static_cast<size_t>(b * slots_ + c - 1)];
      for (int64_t p = 0; p < c; ++p) {
        deltas[static_cast<size_t>(b * slots_ + p)] =
            newest -
            mailbox_read.timestamps[static_cast<size_t>(b * slots_ + p)];
      }
    }
    pos = time_positional_.Forward(deltas);  // {b*m, d}
  }
  Tensor enriched = tensor::Add(flat, pos);
  enriched = tensor::Reshape(enriched, {batch, slots_, dim_});

  // Multi-head attention with the last embedding as the single query.
  nn::AttentionOutput attn = attention_.Forward(
      last_embeddings, enriched, enriched, &mailbox_read.mask);

  // Shortcut addition (⊕ in Figure 4), then LayerNorm, then MLP — exactly
  // the paper's block: z(t) = MLP(LayerNorm(MHA + z(t−))).
  Tensor residual = tensor::Add(attn.output, last_embeddings);
  if (dropout_ > 0.0f && training() && dropout_rng != nullptr) {
    residual =
        tensor::Dropout(residual, dropout_, /*training=*/true, dropout_rng);
  }
  Tensor normed = layer_norm_.Forward(residual);
  Tensor out = mlp_.Forward(normed, dropout_rng);

  Output result;
  result.embeddings = out;
  result.attention = attn.weights;
  return result;
}

}  // namespace core
}  // namespace apan
