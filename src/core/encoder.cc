#include "core/encoder.h"

#include "core/node_state_store.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace apan {
namespace core {

using tensor::Tensor;

namespace {

/// Thread-local learned-position id cache: the table is the same for
/// every encode at a given (batch, slots), so rebuild only when either
/// changes. Thread-local keeps the encoder's Forward const and safe for
/// the shard-concurrent encode pool.
struct PositionIdCache {
  std::vector<int64_t> ids;
  int64_t batch = -1;
  int64_t slots = -1;
  int64_t rebuilds = 0;
};
thread_local PositionIdCache t_position_ids;

const std::vector<int64_t>& PositionIds(int64_t batch, int64_t slots) {
  PositionIdCache& cache = t_position_ids;
  if (cache.batch != batch || cache.slots != slots) {
    cache.ids.resize(static_cast<size_t>(batch * slots));
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t p = 0; p < slots; ++p) {
        cache.ids[static_cast<size_t>(b * slots + p)] = p;
      }
    }
    cache.batch = batch;
    cache.slots = slots;
    ++cache.rebuilds;
  }
  return cache.ids;
}

/// Mail ages for the time-kernel positional mode (thread-local reuse).
std::vector<double>& TimeDeltas(const Mailbox::ReadResult& read,
                                int64_t batch, int64_t slots) {
  thread_local std::vector<double> deltas;
  deltas.assign(static_cast<size_t>(batch * slots), 0.0);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t c = read.counts[static_cast<size_t>(b)];
    if (c == 0) continue;
    const double newest =
        read.timestamps[static_cast<size_t>(b * slots + c - 1)];
    for (int64_t p = 0; p < c; ++p) {
      deltas[static_cast<size_t>(b * slots + p)] =
          newest - read.timestamps[static_cast<size_t>(b * slots + p)];
    }
  }
  return deltas;
}

}  // namespace

int64_t ApanEncoder::position_ids_rebuilds() {
  return t_position_ids.rebuilds;
}

ApanEncoder::ApanEncoder(const ApanConfig& config, Rng* rng)
    : dim_(config.embedding_dim),
      slots_(config.mailbox_slots),
      dropout_(config.dropout),
      positional_mode_(config.positional),
      positional_(config.mailbox_slots, config.embedding_dim, rng),
      time_positional_(config.embedding_dim, rng),
      attention_(config.embedding_dim, config.num_heads, rng),
      layer_norm_(config.embedding_dim),
      mlp_(config.embedding_dim, config.mlp_hidden, config.embedding_dim,
           rng, config.dropout) {
  APAN_CHECK(config.Validate().ok());
  if (positional_mode_ == PositionalMode::kLearnedPosition) {
    RegisterChild(&positional_);
  } else {
    RegisterChild(&time_positional_);
  }
  RegisterChild(&attention_);
  RegisterChild(&layer_norm_);
  RegisterChild(&mlp_);
}

ApanEncoder::Output ApanEncoder::EncodeNodes(
    const NodeStateStore& store, const std::vector<graph::NodeId>& nodes,
    Rng* dropout_rng) const {
  APAN_CHECK_MSG(!nodes.empty(), "EncodeNodes on empty node list");
  const Tensor last = store.GatherLastEmbeddings(nodes);
  const Mailbox::ReadResult read = store.ReadBatch(nodes);
  return Forward(last, read, dropout_rng);
}

ApanEncoder::Output ApanEncoder::Forward(
    const Tensor& last_embeddings, const Mailbox::ReadResult& mailbox_read,
    Rng* dropout_rng) const {
  APAN_CHECK(last_embeddings.defined());
  APAN_CHECK_MSG(last_embeddings.rank() == 2 &&
                     last_embeddings.dim(1) == dim_,
                 "encoder expects {batch, dim} last embeddings");
  const Tensor& mails = mailbox_read.mails;
  APAN_CHECK_MSG(mails.rank() == 3 && mails.dim(1) == slots_ &&
                     mails.dim(2) == dim_,
                 "encoder mailbox tensor shape mismatch");
  const int64_t batch = last_embeddings.dim(0);
  APAN_CHECK(mails.dim(0) == batch);

  if (!tensor::NoGradGuard::GradEnabled()) {
    return ForwardInference(last_embeddings, mailbox_read);
  }

  Tensor flat = tensor::Reshape(mails, {batch * slots_, dim_});
  Tensor pos;
  if (positional_mode_ == PositionalMode::kLearnedPosition) {
    // Positional encoding (Eq. 2): slot position p (time-sorted order)
    // gets row p of the learnable table, identically per batch element.
    pos = positional_.Forward(PositionIds(batch, slots_));  // {b*m, d}
  } else {
    // §3.6 extension: Bochner time kernel over (newest mail − mail) age.
    APAN_CHECK_MSG(
        mailbox_read.timestamps.size() ==
            static_cast<size_t>(batch * slots_),
        "time-kernel positional mode needs mailbox timestamps");
    pos = time_positional_.Forward(
        TimeDeltas(mailbox_read, batch, slots_));  // {b*m, d}
  }
  Tensor enriched = tensor::Add(flat, pos);
  enriched = tensor::Reshape(enriched, {batch, slots_, dim_});

  // Multi-head attention with the last embedding as the single query.
  nn::AttentionOutput attn = attention_.Forward(
      last_embeddings, enriched, enriched, &mailbox_read.mask);

  // Shortcut addition (⊕ in Figure 4), then LayerNorm, then MLP — exactly
  // the paper's block: z(t) = MLP(LayerNorm(MHA + z(t−))).
  Tensor residual = tensor::Add(attn.output, last_embeddings);
  if (dropout_ > 0.0f && training() && dropout_rng != nullptr) {
    residual =
        tensor::Dropout(residual, dropout_, /*training=*/true, dropout_rng);
  }
  Tensor normed = layer_norm_.Forward(residual);
  Tensor out = mlp_.Forward(normed, dropout_rng);

  Output result;
  result.embeddings = out;
  result.attention = attn.weights;
  return result;
}

ApanEncoder::Output ApanEncoder::ForwardInference(
    const Tensor& last_embeddings,
    const Mailbox::ReadResult& mailbox_read) const {
  const Tensor& mails = mailbox_read.mails;
  const int64_t batch = last_embeddings.dim(0);

  // Positional enrichment without the flatten/reshape copies: for the
  // learned mode the whole {slots, dim} table is one periodic "bias" over
  // each batch element's {slots * dim} block — no position-id gather at
  // all on the serve path.
  Tensor enriched =
      tensor::ForwardBuffer({batch, slots_, dim_}, /*zero=*/false);
  if (positional_mode_ == PositionalMode::kLearnedPosition) {
    tensor::kernels::AddBias(mails.data(), positional_.table().data(),
                             enriched.data(), batch, slots_ * dim_);
  } else {
    APAN_CHECK_MSG(
        mailbox_read.timestamps.size() ==
            static_cast<size_t>(batch * slots_),
        "time-kernel positional mode needs mailbox timestamps");
    Tensor pos = time_positional_.Forward(
        TimeDeltas(mailbox_read, batch, slots_));  // {b*m, d}
    tensor::kernels::AddSame(mails.data(), pos.data(), enriched.data(),
                             batch * slots_ * dim_);
  }

  // Fused attention (single-kernel masked softmax, strided heads), then
  // the fused residual+LayerNorm and the fused-ReLU MLP. Dropout is
  // inference-inert by definition here.
  nn::AttentionOutput attn = attention_.Forward(
      last_embeddings, enriched, enriched, &mailbox_read.mask);
  Tensor normed = layer_norm_.ForwardResidual(attn.output, last_embeddings);
  Tensor out = mlp_.Forward(normed);

  Output result;
  result.embeddings = out;
  result.attention = attn.weights;
  return result;
}

}  // namespace core
}  // namespace apan
