// APAN's attention-based encoder (paper §3.3, Figure 4).
//
// Computes the new temporal embedding of a node from its last embedding
// z(t−) and its mailbox M(t):
//
//   M̂(t) = M(t) + P                      (positional encoding, Eq. 2)
//   a    = MultiHead(Q = z(t−) W_Q,
//                    K = M̂ W_K, V = M̂ W_V) + z(t−)   (Eq. 3-4, shortcut)
//   z(t) = MLP(LayerNorm(a))              (Eq. 5 + the MLP that follows)
//
// No graph query happens here — this is the synchronous link.

#ifndef APAN_CORE_ENCODER_H_
#define APAN_CORE_ENCODER_H_

#include <vector>

#include "core/config.h"
#include "core/mailbox.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/time_encoding.h"

namespace apan {
namespace core {

class NodeStateStore;

/// \brief The encoder network. One instance serves every node.
class ApanEncoder : public nn::Module {
 public:
  ApanEncoder(const ApanConfig& config, Rng* rng);

  struct Output {
    /// New embeddings z(t), {batch, dim}.
    tensor::Tensor embeddings;
    /// Detached attention weights {batch, heads, slots}; the per-mail
    /// importance used for interpretability (paper §3.6).
    tensor::Tensor attention;
  };

  /// \param last_embeddings z(t−) as a constant {batch, dim} tensor.
  /// \param mailbox_read time-sorted mails + mask from Mailbox::ReadBatch.
  Output Forward(const tensor::Tensor& last_embeddings,
                 const Mailbox::ReadResult& mailbox_read,
                 Rng* dropout_rng = nullptr) const;

  /// \brief Full encoder pass for `nodes` against a caller-supplied state
  /// store: reads the store's mailbox rows + last embeddings, then
  /// Forward. The store must own every node; no graph queries. This is
  /// how a sharded deployment encodes against shard-local state with
  /// replicated weights.
  Output EncodeNodes(const NodeStateStore& store,
                     const std::vector<graph::NodeId>& nodes,
                     Rng* dropout_rng = nullptr) const;

  int64_t dim() const { return dim_; }
  int64_t slots() const { return slots_; }

  /// \brief Times this thread rebuilt the learned-position id table
  /// (thread-local counter). The table depends only on (batch, slots),
  /// so repeated encodes at one batch size must rebuild it exactly once —
  /// the regression tests assert the counter stays flat.
  static int64_t position_ids_rebuilds();

 private:
  /// Kernel-fused forward for inference mode: positional enrichment,
  /// attention, residual+LayerNorm and the MLP all run through the
  /// dispatched kernels with arena-allocated intermediates, skipping the
  /// Reshape copies and the per-call position-id rebuild.
  Output ForwardInference(const tensor::Tensor& last_embeddings,
                          const Mailbox::ReadResult& mailbox_read) const;

  int64_t dim_;
  int64_t slots_;
  float dropout_;
  PositionalMode positional_mode_;
  nn::EmbeddingTable positional_;      // {slots, dim} (kLearnedPosition)
  nn::TimeEncoding time_positional_;   // Φ(Δt) (kTimeKernel, §3.6)
  nn::MultiHeadAttention attention_;
  nn::LayerNorm layer_norm_;
  nn::Mlp mlp_;
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_ENCODER_H_
