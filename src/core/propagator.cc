#include "core/propagator.h"

#include <algorithm>
#include <unordered_map>

namespace apan {
namespace core {

MailPropagator::MailPropagator(const ApanConfig& config,
                               const graph::TemporalGraph* graph,
                               const graph::EdgeFeatureStore* features)
    : config_(config), graph_(graph), features_(features) {
  APAN_CHECK(graph != nullptr && features != nullptr);
  APAN_CHECK(config.Validate().ok());
  APAN_CHECK_MSG(features->dim() == config.embedding_dim,
                 "mail dim must equal edge feature dim (paper §3.5)");
}

std::vector<float> MailPropagator::MakeMail(
    const InteractionRecord& record) const {
  const int64_t d = config_.embedding_dim;
  APAN_CHECK_MSG(static_cast<int64_t>(record.z_src.size()) == d &&
                     static_cast<int64_t>(record.z_dst.size()) == d,
                 "interaction embeddings have wrong dimension");
  std::vector<float> mail(static_cast<size_t>(d));
  const float* e = features_->Row(record.event.edge_id);
  for (int64_t i = 0; i < d; ++i) {
    mail[static_cast<size_t>(i)] =
        record.z_src[static_cast<size_t>(i)] + e[i] +
        record.z_dst[static_cast<size_t>(i)];
  }
  return mail;
}

std::vector<MailDelivery> MailPropagator::ComputeDeliveries(
    const std::vector<InteractionRecord>& batch) const {
  std::vector<MailDelivery> out;
  const int64_t d = config_.embedding_dim;

  // Hop 0: each event's mail goes to both endpoints *unreduced* — a node's
  // own interactions each occupy a mailbox slot, keeping its own history
  // crisp. ρ applies only to the propagated k-hop copies below (that is
  // where high-degree nodes would otherwise be flooded).
  struct Accumulator {
    std::vector<float> sum;
    double newest = 0.0;
    int64_t count = 0;
  };
  std::unordered_map<graph::NodeId, Accumulator> propagated;

  for (const InteractionRecord& record : batch) {
    std::vector<float> mail = MakeMail(record);
    const double t = record.event.timestamp;

    // Hops 1..k: sampled neighborhood at time t (mail passing f is the
    // identity, so every hop receives the same payload). Most-recent
    // sampling is the paper's choice; uniform is the §3.5 alternative.
    if (config_.propagation_hops > 0) {
      const auto hops =
          config_.sampling == PropagationSampling::kMostRecent
              ? graph::KHopMostRecent(
                    *graph_, {record.event.src, record.event.dst}, t,
                    config_.propagation_hops, config_.sampled_neighbors)
              : graph::KHopUniform(
                    *graph_, {record.event.src, record.event.dst}, t,
                    config_.propagation_hops, config_.sampled_neighbors,
                    &sampling_rng_);
      for (const auto& entry : hops) {
        if (entry.node == record.event.src ||
            entry.node == record.event.dst) {
          continue;  // endpoints already receive the mail directly
        }
        auto& acc = propagated[entry.node];
        if (acc.sum.empty()) acc.sum.assign(static_cast<size_t>(d), 0.0f);
        for (int64_t i = 0; i < d; ++i) {
          acc.sum[static_cast<size_t>(i)] += mail[static_cast<size_t>(i)];
        }
        acc.newest = std::max(acc.newest, t);
        ++acc.count;
      }
    }

    MailDelivery to_src{record.event.src, mail, t, 1};
    if (record.event.dst != record.event.src) {
      out.push_back(to_src);
      out.push_back({record.event.dst, std::move(mail), t, 1});
    } else {
      out.push_back(std::move(to_src));
    }
  }

  // ρ: mean-reduce the propagated mails to one per recipient per batch.
  std::vector<MailDelivery> reduced;
  reduced.reserve(propagated.size());
  for (auto& [recipient, acc] : propagated) {
    MailDelivery delivery;
    delivery.recipient = recipient;
    delivery.mail = std::move(acc.sum);
    const float inv = 1.0f / static_cast<float>(acc.count);
    for (auto& v : delivery.mail) v *= inv;
    delivery.timestamp = acc.newest;
    delivery.contributions = acc.count;
    reduced.push_back(std::move(delivery));
  }
  std::sort(reduced.begin(), reduced.end(),
            [](const MailDelivery& a, const MailDelivery& b) {
              return a.recipient < b.recipient;
            });
  out.insert(out.end(), std::make_move_iterator(reduced.begin()),
             std::make_move_iterator(reduced.end()));
  return out;
}

int64_t MailPropagator::Propagate(
    const std::vector<InteractionRecord>& batch, Mailbox* mailbox) const {
  APAN_CHECK(mailbox != nullptr);
  const auto deliveries = ComputeDeliveries(batch);
  for (const MailDelivery& d : deliveries) {
    mailbox->Deliver(d.recipient, d.mail, d.timestamp);
  }
  return static_cast<int64_t>(deliveries.size());
}

}  // namespace core
}  // namespace apan
