#include "core/propagator.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace apan {
namespace core {

MailPropagator::MailPropagator(const ApanConfig& config,
                               const graph::TemporalGraph* graph,
                               const graph::EdgeFeatureStore* features)
    : config_(config), graph_(graph), features_(features) {
  APAN_CHECK(graph != nullptr && features != nullptr);
  APAN_CHECK(config.Validate().ok());
  APAN_CHECK_MSG(features->dim() == config.embedding_dim,
                 "mail dim must equal edge feature dim (paper §3.5)");
}

std::vector<float> MailPropagator::MakeMail(
    const InteractionRecord& record) const {
  const int64_t d = config_.embedding_dim;
  APAN_CHECK_MSG(static_cast<int64_t>(record.z_src.size()) == d &&
                     static_cast<int64_t>(record.z_dst.size()) == d,
                 "interaction embeddings have wrong dimension");
  std::vector<float> mail(static_cast<size_t>(d));
  const float* e = features_->Row(record.event.edge_id);
  for (int64_t i = 0; i < d; ++i) {
    mail[static_cast<size_t>(i)] =
        record.z_src[static_cast<size_t>(i)] + e[i] +
        record.z_dst[static_cast<size_t>(i)];
  }
  return mail;
}

PartialPropagation MailPropagator::ComputePartial(
    std::span<const InteractionRecord> records,
    std::span<const int64_t> event_index) const {
  // N: sample each record's neighborhood on the local monolithic graph,
  // then run the graph-free stage. Most-recent sampling is the paper's
  // choice; uniform is the §3.5 alternative.
  std::vector<std::vector<graph::HopEntry>> hops(records.size());
  if (config_.propagation_hops > 0) {
    for (size_t r = 0; r < records.size(); ++r) {
      const InteractionRecord& record = records[r];
      const double t = record.event.timestamp;
      hops[r] =
          config_.sampling == PropagationSampling::kMostRecent
              ? graph::KHopMostRecent(
                    *graph_, {record.event.src, record.event.dst}, t,
                    config_.propagation_hops, config_.sampled_neighbors)
              : graph::KHopUniform(
                    *graph_, {record.event.src, record.event.dst}, t,
                    config_.propagation_hops, config_.sampled_neighbors,
                    &sampling_rng_);
    }
  }
  return ComputePartialFromHops(records, event_index, hops);
}

PartialPropagation MailPropagator::ComputePartialFromHops(
    std::span<const InteractionRecord> records,
    std::span<const int64_t> event_index,
    std::span<const std::vector<graph::HopEntry>> hops) const {
  APAN_CHECK_MSG(records.size() == event_index.size(),
                 "one event index per record");
  APAN_CHECK_MSG(records.size() == hops.size(),
                 "one hop expansion per record");
  PartialPropagation out;
  const int64_t d = config_.embedding_dim;

  // Hop 0: each event's mail goes to both endpoints *unreduced* — a node's
  // own interactions each occupy a mailbox slot, keeping its own history
  // crisp. ρ applies only to the propagated k-hop copies below (that is
  // where high-degree nodes would otherwise be flooded).
  struct Accumulator {
    std::vector<float> sum;
    double newest = 0.0;
    int64_t count = 0;
  };
  std::unordered_map<graph::NodeId, Accumulator> propagated;

  for (size_t r = 0; r < records.size(); ++r) {
    const InteractionRecord& record = records[r];
    std::vector<float> mail = MakeMail(record);
    const double t = record.event.timestamp;

    // Hops 1..k: mail passing f is the identity, so every sampled
    // occurrence receives the same payload.
    for (const auto& entry : hops[r]) {
      if (entry.node == record.event.src ||
          entry.node == record.event.dst) {
        continue;  // endpoints already receive the mail directly
      }
      auto& acc = propagated[entry.node];
      if (acc.sum.empty()) acc.sum.assign(static_cast<size_t>(d), 0.0f);
      for (int64_t i = 0; i < d; ++i) {
        acc.sum[static_cast<size_t>(i)] += mail[static_cast<size_t>(i)];
      }
      acc.newest = std::max(acc.newest, t);
      ++acc.count;
    }

    const int64_t seq = 2 * event_index[r];
    MailDelivery to_src{record.event.src, mail, t, 1};
    if (record.event.dst != record.event.src) {
      out.hop0.push_back({seq, to_src});
      out.hop0.push_back(
          {seq + 1, {record.event.dst, std::move(mail), t, 1}});
    } else {
      out.hop0.push_back({seq, std::move(to_src)});
    }
  }

  out.partial.reserve(propagated.size());
  for (auto& [recipient, acc] : propagated) {
    out.partial.push_back(
        {recipient, std::move(acc.sum), acc.newest, acc.count});
  }
  std::sort(out.partial.begin(), out.partial.end(),
            [](const PartialPropagation::PartialReduce& a,
               const PartialPropagation::PartialReduce& b) {
              return a.recipient < b.recipient;
            });
  return out;
}

MailDelivery MailPropagator::FinalizeReduce(
    PartialPropagation::PartialReduce&& partial) {
  APAN_CHECK_MSG(partial.count > 0, "FinalizeReduce on empty partial");
  MailDelivery delivery;
  delivery.recipient = partial.recipient;
  delivery.mail = std::move(partial.sum);
  const float inv = 1.0f / static_cast<float>(partial.count);
  for (auto& v : delivery.mail) v *= inv;
  delivery.timestamp = partial.newest;
  delivery.contributions = partial.count;
  return delivery;
}

std::vector<MailDelivery> MailPropagator::ComputeDeliveries(
    const std::vector<InteractionRecord>& batch) const {
  std::vector<int64_t> event_index(batch.size());
  std::iota(event_index.begin(), event_index.end(), 0);
  PartialPropagation part = ComputePartial(batch, event_index);

  std::vector<MailDelivery> out;
  out.reserve(part.hop0.size() + part.partial.size());
  for (auto& tagged : part.hop0) out.push_back(std::move(tagged.delivery));
  // ρ: mean-reduce the propagated mails to one per recipient per batch.
  for (auto& partial : part.partial) {
    out.push_back(FinalizeReduce(std::move(partial)));
  }
  return out;
}

int64_t MailPropagator::Propagate(
    const std::vector<InteractionRecord>& batch, Mailbox* mailbox) const {
  APAN_CHECK(mailbox != nullptr);
  const auto deliveries = ComputeDeliveries(batch);
  return mailbox->DeliverBatch(deliveries);
}

}  // namespace core
}  // namespace apan
