#include "core/node_state_store.h"

#include <algorithm>
#include <utility>

namespace apan {
namespace core {

NodeStateStore::NodeStateStore(int64_t num_nodes, int64_t slots, int64_t dim)
    : num_nodes_(num_nodes),
      dim_(dim),
      dense_all_(true),
      mailbox_(num_nodes, slots, dim),
      state_(static_cast<size_t>(num_nodes * dim), 0.0f) {
  APAN_CHECK_MSG(num_nodes > 0 && dim > 0,
                 "NodeStateStore dimensions must be positive");
}

NodeStateStore::NodeStateStore(std::shared_ptr<const Partition> partition,
                               int shard, int64_t slots, int64_t dim)
    : num_nodes_(partition != nullptr
                     ? static_cast<int64_t>(partition->owner_of.size())
                     : 0),
      dim_(dim),
      partition_(std::move(partition)),
      shard_(shard),
      mailbox_(partition_ != nullptr && shard >= 0 &&
                       shard < partition_->num_shards
                   ? partition_->owned_count[static_cast<size_t>(shard)]
                   : 0,
               slots, dim),
      state_(static_cast<size_t>(mailbox_.num_nodes() * dim), 0.0f) {
  APAN_CHECK_MSG(partition_ != nullptr, "null Partition");
  APAN_CHECK_MSG(shard >= 0 && shard < partition_->num_shards,
                 "shard id out of range for the Partition");
  APAN_CHECK_MSG(num_nodes_ > 0 && dim > 0,
                 "NodeStateStore dimensions must be positive");
}

bool NodeStateStore::Owns(graph::NodeId node) const {
  if (node < 0 || node >= num_nodes_) return false;
  return dense_all_ ||
         partition_->owner_of[static_cast<size_t>(node)] == shard_;
}

int64_t NodeStateStore::LocalRow(graph::NodeId node) const {
  APAN_CHECK_MSG(node >= 0 && node < num_nodes_,
                 "node id out of range in NodeStateStore");
  if (dense_all_) return node;
  APAN_CHECK_MSG(partition_->owner_of[static_cast<size_t>(node)] == shard_,
                 "node is not owned by this NodeStateStore");
  return partition_->local_row[static_cast<size_t>(node)];
}

tensor::Tensor NodeStateStore::GatherLastEmbeddings(
    const std::vector<graph::NodeId>& nodes) const {
  std::vector<float> out(nodes.size() * static_cast<size_t>(dim_));
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int64_t row = LocalRow(nodes[i]);
    std::copy_n(state_.data() + static_cast<size_t>(row * dim_), dim_,
                out.data() + i * static_cast<size_t>(dim_));
  }
  return tensor::Tensor::FromVector({static_cast<int64_t>(nodes.size()), dim_},
                                    std::move(out));
}

void NodeStateStore::UpdateLastEmbeddings(
    const std::vector<graph::NodeId>& nodes,
    const tensor::Tensor& embeddings) {
  APAN_CHECK(embeddings.defined() && embeddings.rank() == 2);
  APAN_CHECK(embeddings.dim(0) == static_cast<int64_t>(nodes.size()) &&
             embeddings.dim(1) == dim_);
  const float* src = embeddings.data();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int64_t row = LocalRow(nodes[i]);
    std::copy_n(src + i * static_cast<size_t>(dim_), dim_,
                state_.data() + static_cast<size_t>(row * dim_));
  }
}

std::vector<float> NodeStateStore::LastEmbedding(graph::NodeId node) const {
  const int64_t row = LocalRow(node);
  return std::vector<float>(
      state_.begin() + static_cast<size_t>(row * dim_),
      state_.begin() + static_cast<size_t>((row + 1) * dim_));
}

void NodeStateStore::SetLastEmbedding(graph::NodeId node,
                                      std::span<const float> z) {
  const int64_t row = LocalRow(node);
  APAN_CHECK_MSG(static_cast<int64_t>(z.size()) == dim_,
                 "embedding dimension mismatch");
  std::copy(z.begin(), z.end(),
            state_.begin() + static_cast<size_t>(row * dim_));
}

Mailbox::ReadResult NodeStateStore::ReadBatch(
    const std::vector<graph::NodeId>& nodes) const {
  if (dense_all_) return mailbox_.ReadBatch(nodes);
  std::vector<graph::NodeId> rows;
  rows.reserve(nodes.size());
  for (const graph::NodeId v : nodes) rows.push_back(LocalRow(v));
  return mailbox_.ReadBatch(rows);
}

int64_t NodeStateStore::DeliverBatch(std::vector<MailDelivery>&& deliveries) {
  if (!dense_all_) {
    for (MailDelivery& d : deliveries) d.recipient = LocalRow(d.recipient);
  }
  return mailbox_.DeliverBatch(deliveries);
}

int64_t NodeStateStore::DeliverBatch(std::span<const MailDelivery> deliveries) {
  if (dense_all_) return mailbox_.DeliverBatch(deliveries);
  std::vector<MailDelivery> translated(deliveries.begin(), deliveries.end());
  return DeliverBatch(std::move(translated));
}

int64_t NodeStateStore::ValidCount(graph::NodeId node) const {
  return mailbox_.ValidCount(LocalRow(node));
}

double NodeStateStore::NewestTimestamp(graph::NodeId node) const {
  return mailbox_.NewestTimestamp(LocalRow(node));
}

std::span<const float> NodeStateStore::RawSlot(graph::NodeId node,
                                               int64_t slot) const {
  return mailbox_.RawSlot(LocalRow(node), slot);
}

Status NodeStateStore::RestoreRawState(std::span<const float> z) {
  if (z.size() != state_.size()) {
    return Status::InvalidArgument(internal::StrCat(
        "state restore: got ", z.size(), " floats for a store holding ",
        state_.size(), " (owned_count * dim mismatch)"));
  }
  std::copy(z.begin(), z.end(), state_.begin());
  return Status::OK();
}

void NodeStateStore::Reset() {
  std::fill(state_.begin(), state_.end(), 0.0f);
  mailbox_.Clear();
}

int64_t NodeStateStore::MemoryBytes() const {
  // The partition index is shared by num_shards stores; charge each
  // store its amortized share so summing over the partition counts the
  // index exactly once.
  const int64_t index_bytes =
      partition_ != nullptr
          ? static_cast<int64_t>((partition_->owner_of.size() +
                                  partition_->local_row.size()) *
                                 sizeof(int32_t)) /
                partition_->num_shards
          : 0;
  return mailbox_.MemoryBytes() +
         static_cast<int64_t>(state_.size() * sizeof(float)) + index_bytes;
}

}  // namespace core
}  // namespace apan
