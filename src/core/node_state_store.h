// The node-state plane — APAN's mutable per-node serve-time state for an
// arbitrary node subset: a Mailbox slice plus the z(t−) embedding rows,
// with dense local indexing so a store covering one shard of a hash
// partition costs memory proportional to the nodes it owns, not the whole
// graph (TGAT / TAP-GNN make the same split: the node-state table is what
// must be partitioned to scale temporal-graph inference; the weights are
// small and trivially replicable).
//
// Addressing is by *global* node id: the store translates to its dense
// local rows internally and CHECK-fails on a node it does not own, so a
// misrouted write can never land in a foreign shard's memory. A store
// constructed without an ownership list covers every node with the
// identity mapping — that is ApanModel's default store, through which
// training and the single-worker AsyncPipeline keep exactly their
// monolithic behavior. serve::ShardedEngine constructs one disjoint store
// per shard instead, so each shard's mutable state lives in genuinely
// private memory (no false sharing on the synchronous encode path).

#ifndef APAN_CORE_NODE_STATE_STORE_H_
#define APAN_CORE_NODE_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/mailbox.h"
#include "graph/node_partition.h"
#include "graph/temporal_graph.h"
#include "tensor/tensor.h"

namespace apan {
namespace core {

/// \brief Mutable per-node state (mailbox slice + z(t−) rows) for a node
/// subset, addressed by global node id.
class NodeStateStore {
 public:
  /// \brief Dense index over a disjoint N-way partition of the node
  /// space, built once and shared (shared_ptr) by every store of the
  /// partition AND by graph::ShardedTemporalGraph's slices (the two
  /// planes' ownership maps are element-identical, so one engine stores
  /// the index exactly once). Without sharing, per-store index memory
  /// would scale O(num_shards * num_nodes) and sink the "partitioned
  /// stores sum to ~1x monolithic" invariant at high shard counts.
  using Partition = graph::NodePartition;

  /// Store covering all of `[0, num_nodes)` with the identity mapping
  /// (local row == node id). This is the monolithic / default layout.
  NodeStateStore(int64_t num_nodes, int64_t slots, int64_t dim);

  /// One shard's store of a shared partition — the serve-time layout
  /// (serve::ShardedEngine builds one Partition and N of these). An
  /// arbitrary subset is the 1-shard-of-2 special case: put the subset
  /// on one shard of the partition and the rest on the other.
  NodeStateStore(std::shared_ptr<const Partition> partition, int shard,
                 int64_t slots, int64_t dim);

  NodeStateStore(const NodeStateStore&) = delete;
  NodeStateStore& operator=(const NodeStateStore&) = delete;

  /// Size of the *global* id space this store addresses into.
  int64_t num_nodes() const { return num_nodes_; }
  /// Nodes this store actually holds state for.
  int64_t owned_count() const { return mailbox_.num_nodes(); }
  int64_t slots() const { return mailbox_.slots(); }
  int64_t dim() const { return dim_; }
  bool Owns(graph::NodeId node) const;

  // ---- z(t−) plane ---------------------------------------------------------

  /// Stored embeddings of `nodes` as a constant {batch, dim} tensor.
  /// CHECK-fails on a node outside this store's ownership.
  tensor::Tensor GatherLastEmbeddings(
      const std::vector<graph::NodeId>& nodes) const;

  /// Writes `embeddings` ({batch, dim}) row i as `nodes[i]`'s new z(t−).
  void UpdateLastEmbeddings(const std::vector<graph::NodeId>& nodes,
                            const tensor::Tensor& embeddings);

  /// Raw read of one node's stored embedding.
  std::vector<float> LastEmbedding(graph::NodeId node) const;

  /// Raw write of one node's stored embedding. Bounds-checked: `node`
  /// must be owned and `z.size()` must equal dim() — a violation aborts
  /// instead of silently indexing out of range.
  void SetLastEmbedding(graph::NodeId node, std::span<const float> z);

  // ---- Mailbox plane -------------------------------------------------------

  /// Batched, time-sorted mailbox read-out for the encoder (global ids).
  Mailbox::ReadResult ReadBatch(const std::vector<graph::NodeId>& nodes) const;

  /// \brief Delivers a batch of mails whose recipients this store owns.
  /// The move overload rewrites recipients to local rows in place (the
  /// serve-time hot path); the span overload copies when translation is
  /// needed. \return number of mails stored.
  int64_t DeliverBatch(std::vector<MailDelivery>&& deliveries);
  int64_t DeliverBatch(std::span<const MailDelivery> deliveries);

  int64_t ValidCount(graph::NodeId node) const;
  double NewestTimestamp(graph::NodeId node) const;
  std::span<const float> RawSlot(graph::NodeId node, int64_t slot) const;

  /// The underlying mailbox, addressed by *local row*. Local rows equal
  /// global ids only for an all-nodes store (ApanModel::mailbox() exposes
  /// exactly that); subset stores should go through the global-id API.
  Mailbox& mailbox() { return mailbox_; }
  const Mailbox& mailbox() const { return mailbox_; }

  // ---- Checkpoint hooks (serve/snapshot.cc) --------------------------------

  /// All z(t−) rows in local-row order (owned_count * dim floats).
  std::span<const float> raw_state() const { return state_; }

  /// \brief Replaces every z(t−) row from a decoded snapshot. Rejects a
  /// size mismatch with Status (the store is left unchanged) — restoring
  /// into a store with different ownership must fail loudly, not write
  /// rows into the wrong nodes.
  Status RestoreRawState(std::span<const float> z);

  // ---- Lifecycle -----------------------------------------------------------

  /// Zeroes every z(t−) row and drops all mail (between epochs), exactly
  /// as ApanModel::ResetState does for the default store.
  void Reset();

  /// Bytes of mutable state: mailbox payload (mail + timestamps, as
  /// Mailbox::MemoryBytes counts it) + z(t−) rows + this store's
  /// amortized 1/num_shards share of the shared Partition index (the
  /// all-nodes store needs no index). Disjoint stores over a partition
  /// therefore sum to ~1x the monolithic store at ANY shard count: each
  /// node's rows live in exactly one store, and the partition index is
  /// counted once total — provided the caller instantiates the whole
  /// partition, which is what the accounting is for.
  int64_t MemoryBytes() const;

 private:
  /// Dense row of `node`; CHECK-fails when the store does not own it.
  int64_t LocalRow(graph::NodeId node) const;

  int64_t num_nodes_;
  int64_t dim_;
  /// Identity fast path for the all-nodes store (no index needed);
  /// otherwise the shared partition_ + shard_ form is the index.
  bool dense_all_ = false;
  std::shared_ptr<const Partition> partition_;
  int shard_ = -1;
  Mailbox mailbox_;           // owned_count rows
  std::vector<float> state_;  // owned_count * dim, z(t−) per row
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_NODE_STATE_STORE_H_
