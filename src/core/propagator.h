// The asynchronous mail propagator (paper §3.5, Figure 5).
//
// After the encoder produces embeddings for an interaction
// (v_i, v_j, e_ij, t), the propagator:
//   φ  builds the mail  mail(t) = z_i(t) + e_ij(t) + z_j(t)  (summation
//      keeps the mailbox memory footprint at one slot per mail);
//   N  samples the k-hop most-recent neighborhood of {v_i, v_j} using only
//      edges strictly before t (no future leakage);
//   f  passes the mail unchanged along each sampled path (identity);
//   ρ  mean-reduces multiple mails arriving at one recipient in the same
//      batch into a single mail;
//   ψ  appends the reduced mail to each recipient's FIFO mailbox.
//
// The interacting endpoints themselves always receive the mail (their own
// mailboxes are how they remember their own history); sampled neighbors
// receive it at hops 1..k.
//
// This module runs on the asynchronous link: in serving it executes on a
// background worker (serve::AsyncPipeline); in training it runs after the
// optimizer step, as in the reference implementation.

#ifndef APAN_CORE_PROPAGATOR_H_
#define APAN_CORE_PROPAGATOR_H_

#include <span>
#include <vector>

#include "core/config.h"
#include "core/mailbox.h"
#include "graph/edge_features.h"
#include "graph/sampling.h"
#include "graph/temporal_graph.h"

namespace apan {
namespace core {

/// A completed interaction plus the (detached) embeddings the encoder
/// produced for it — everything φ needs.
struct InteractionRecord {
  graph::Event event;
  std::vector<float> z_src;
  std::vector<float> z_dst;
};

// MailDelivery lives in core/mailbox.h (it is the unit Mailbox consumes);
// re-exported here for existing includers.

/// \brief Unreduced propagation output for a slice of a batch — the
/// shardable form of ComputeDeliveries (serve::ShardedEngine).
///
/// Hop-0 deliveries carry a sequence tag (derived from the event's global
/// position in the batch) so a recipient that gathers slices from several
/// shards can reconstruct the exact per-node delivery order. Hops 1..k are
/// returned as per-recipient partial *sums*; the recipient finalizes ρ
/// (divide by the total contribution count) only after merging every
/// slice, so the reduced mail spans the whole batch exactly as in the
/// single-worker path.
struct PartialPropagation {
  struct TaggedDelivery {
    /// 2 * global event index + {0: src endpoint, 1: dst endpoint}.
    int64_t sequence = 0;
    MailDelivery delivery;
  };
  struct PartialReduce {
    graph::NodeId recipient = -1;
    std::vector<float> sum;  ///< Σ of propagated mails, not yet ρ-averaged.
    double newest = 0.0;
    int64_t count = 0;
  };
  /// In event order (src before dst within an event).
  std::vector<TaggedDelivery> hop0;
  /// Sorted by recipient; one entry per distinct hop-1..k recipient.
  std::vector<PartialReduce> partial;
};

/// \brief Stateless propagation logic; mailbox state lives in Mailbox.
class MailPropagator {
 public:
  /// `graph` and `features` must outlive the propagator. The graph is
  /// queried on the *asynchronous* link only.
  MailPropagator(const ApanConfig& config,
                 const graph::TemporalGraph* graph,
                 const graph::EdgeFeatureStore* features);

  /// \brief φ + N + f + ρ for one batch.
  ///
  /// Returns, in order: one *unreduced* delivery per event per endpoint
  /// (hop 0 — a node's own interactions each occupy a mailbox slot), then
  /// one ρ-mean-reduced delivery per distinct propagated recipient (hops
  /// 1..k), sorted by recipient id. Endpoints never appear in the reduced
  /// section for mails they already received directly.
  std::vector<MailDelivery> ComputeDeliveries(
      const std::vector<InteractionRecord>& batch) const;

  /// \brief φ + N + f for a *slice* of a batch, leaving ρ unfinalized.
  ///
  /// `event_index[i]` is records[i]'s position in the full batch; it seeds
  /// the hop-0 sequence tags. ComputeDeliveries(batch) is exactly
  /// ComputePartial over the whole batch followed by FinalizeReduce on
  /// each partial entry. Thread-safe for concurrent calls under
  /// PropagationSampling::kMostRecent (kUniform draws from a shared RNG).
  PartialPropagation ComputePartial(
      std::span<const InteractionRecord> records,
      std::span<const int64_t> event_index) const;

  /// \brief φ + f + unfinalized ρ over *externally sampled* neighborhoods.
  ///
  /// `hops[i]` is records[i]'s k-hop expansion (hop order, as produced by
  /// graph::KHopMostRecent — or reassembled from per-owner-shard slice
  /// reads, which is how serve::ShardedEngine samples across
  /// graph::ShardedTemporalGraph slices). ComputePartial is exactly
  /// sampling each record's neighborhood locally, then delegating here;
  /// accumulation order (record-major, hop-entry order) is identical, so
  /// the two paths produce bitwise-equal partials for equal hop lists.
  /// No graph access; thread-safe.
  PartialPropagation ComputePartialFromHops(
      std::span<const InteractionRecord> records,
      std::span<const int64_t> event_index,
      std::span<const std::vector<graph::HopEntry>> hops) const;

  /// ρ for one recipient: divides the merged sum by the contribution
  /// count. `partial.count` must be positive.
  static MailDelivery FinalizeReduce(PartialPropagation::PartialReduce&& partial);

  /// \brief Full propagation: ComputeDeliveries then ψ (mailbox append).
  /// \return number of deliveries made.
  int64_t Propagate(const std::vector<InteractionRecord>& batch,
                    Mailbox* mailbox) const;

  /// φ alone: mail(t) = z_i + e_ij + z_j. Exposed for tests.
  std::vector<float> MakeMail(const InteractionRecord& record) const;

 private:
  ApanConfig config_;
  const graph::TemporalGraph* graph_;
  const graph::EdgeFeatureStore* features_;
  /// Only drawn from under PropagationSampling::kUniform.
  mutable Rng sampling_rng_{0xA9A17ULL};
};

}  // namespace core
}  // namespace apan

#endif  // APAN_CORE_PROPAGATOR_H_
