#include "baselines/random_walk.h"

#include <algorithm>
#include <cmath>

namespace apan {
namespace baselines {

namespace {

float Dot(const float* a, const float* b, int64_t d) {
  float s = 0.0f;
  for (int64_t i = 0; i < d; ++i) s += a[i] * b[i];
  return s;
}

float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

RandomWalkEmbedding::RandomWalkEmbedding(Kind kind, const Options& options,
                                         uint64_t seed, std::string name)
    : kind_(kind), options_(options), rng_(seed) {
  if (!name.empty()) {
    name_ = std::move(name);
  } else {
    switch (kind) {
      case Kind::kDeepWalk:
        name_ = "DeepWalk";
        break;
      case Kind::kNode2Vec:
        name_ = "Node2vec";
        break;
      case Kind::kCtdne:
        name_ = "CTDNE";
        break;
    }
  }
  APAN_CHECK(options.dim > 0 && options.walk_length > 1);
}

std::vector<std::vector<graph::NodeId>>
RandomWalkEmbedding::GenerateStaticWalks(const graph::StaticGraph& graph) {
  std::vector<std::vector<graph::NodeId>> walks;
  const bool biased = kind_ == Kind::kNode2Vec;
  for (int64_t round = 0; round < options_.walks_per_node; ++round) {
    for (graph::NodeId start = 0; start < graph.num_nodes(); ++start) {
      if (graph.Degree(start) == 0) continue;
      std::vector<graph::NodeId> walk = {start};
      graph::NodeId prev = -1;
      graph::NodeId cur = start;
      while (static_cast<int64_t>(walk.size()) < options_.walk_length) {
        const auto nbrs = graph.Neighbors(cur);
        if (nbrs.empty()) break;
        graph::NodeId next;
        if (!biased || prev < 0) {
          next = nbrs[rng_.UniformInt(nbrs.size())];
        } else {
          // Node2Vec second-order bias: weight 1/p to return, 1 for
          // triangle closers, 1/q to explore.
          std::vector<double> weights(nbrs.size());
          for (size_t i = 0; i < nbrs.size(); ++i) {
            const graph::NodeId cand = nbrs[i];
            if (cand == prev) {
              weights[i] = 1.0 / options_.p;
            } else if (graph.HasEdge(cand, prev)) {
              weights[i] = 1.0;
            } else {
              weights[i] = 1.0 / options_.q;
            }
          }
          const size_t pick = rng_.Categorical(weights);
          next = nbrs[pick < nbrs.size() ? pick : 0];
        }
        walk.push_back(next);
        prev = cur;
        cur = next;
      }
      if (walk.size() > 1) walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::vector<graph::NodeId>>
RandomWalkEmbedding::GenerateTemporalWalks(const data::Dataset& dataset) {
  // Per-node time-sorted adjacency over the training range.
  struct TimedEdge {
    double t;
    graph::NodeId to;
  };
  std::vector<std::vector<TimedEdge>> adj(
      static_cast<size_t>(dataset.num_nodes));
  for (size_t i = 0; i < dataset.train_end; ++i) {
    const auto& e = dataset.events[i];
    adj[static_cast<size_t>(e.src)].push_back({e.timestamp, e.dst});
    adj[static_cast<size_t>(e.dst)].push_back({e.timestamp, e.src});
  }
  // Events arrive time-sorted, so each adjacency list is already sorted.

  std::vector<std::vector<graph::NodeId>> walks;
  if (dataset.train_end == 0) return walks;
  const size_t total_walks = static_cast<size_t>(
      options_.walks_per_node *
      std::max<int64_t>(1, dataset.num_nodes / 2));
  for (size_t w = 0; w < total_walks; ++w) {
    // Start from a uniformly random training event (edge-biased start, as
    // in the CTDNE paper).
    const auto& start_event =
        dataset.events[rng_.UniformInt(dataset.train_end)];
    std::vector<graph::NodeId> walk = {start_event.src, start_event.dst};
    graph::NodeId cur = start_event.dst;
    double cur_time = start_event.timestamp;
    while (static_cast<int64_t>(walk.size()) < options_.walk_length) {
      const auto& edges = adj[static_cast<size_t>(cur)];
      // First edge with timestamp strictly greater than the current time
      // (temporal validity: walks respect time order).
      const auto it = std::upper_bound(
          edges.begin(), edges.end(), cur_time,
          [](double t, const TimedEdge& e) { return t < e.t; });
      if (it == edges.end()) break;
      const size_t available = static_cast<size_t>(edges.end() - it);
      const TimedEdge& chosen = *(it + rng_.UniformInt(available));
      walk.push_back(chosen.to);
      cur = chosen.to;
      cur_time = chosen.t;
    }
    if (walk.size() > 1) walks.push_back(std::move(walk));
  }
  return walks;
}

void RandomWalkEmbedding::TrainSgns(
    const std::vector<std::vector<graph::NodeId>>& walks,
    int64_t num_nodes) {
  const int64_t d = options_.dim;
  num_nodes_ = num_nodes;
  in_vectors_.resize(static_cast<size_t>(num_nodes * d));
  out_vectors_.assign(static_cast<size_t>(num_nodes * d), 0.0f);
  for (auto& v : in_vectors_) {
    v = static_cast<float>((rng_.Uniform() - 0.5) / d);
  }

  // Unigram^0.75 negative table.
  std::vector<double> freq(static_cast<size_t>(num_nodes), 0.0);
  for (const auto& walk : walks) {
    for (graph::NodeId v : walk) freq[static_cast<size_t>(v)] += 1.0;
  }
  std::vector<graph::NodeId> neg_table;
  neg_table.reserve(1 << 16);
  double total = 0.0;
  for (double f : freq) total += std::pow(f, 0.75);
  if (total <= 0.0) return;
  for (int64_t v = 0; v < num_nodes; ++v) {
    const auto count = static_cast<size_t>(
        std::pow(freq[static_cast<size_t>(v)], 0.75) / total * 65536.0);
    for (size_t i = 0; i < count; ++i) neg_table.push_back(v);
  }
  if (neg_table.empty()) return;

  std::vector<float> grad_center(static_cast<size_t>(d));
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const float lr = options_.lr *
                     (1.0f - static_cast<float>(epoch) /
                                 static_cast<float>(options_.epochs));
    for (const auto& walk : walks) {
      for (size_t center = 0; center < walk.size(); ++center) {
        const size_t lo =
            center >= static_cast<size_t>(options_.window)
                ? center - static_cast<size_t>(options_.window)
                : 0;
        const size_t hi = std::min(
            walk.size(), center + static_cast<size_t>(options_.window) + 1);
        float* vc =
            in_vectors_.data() + walk[center] * d;
        for (size_t ctx = lo; ctx < hi; ++ctx) {
          if (ctx == center) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // Positive pair.
          {
            float* vo = out_vectors_.data() + walk[ctx] * d;
            const float g = (1.0f - FastSigmoid(Dot(vc, vo, d))) * lr;
            for (int64_t k = 0; k < d; ++k) {
              grad_center[static_cast<size_t>(k)] += g * vo[k];
              vo[k] += g * vc[k];
            }
          }
          // Negative pairs.
          for (int64_t n = 0; n < options_.negatives; ++n) {
            const graph::NodeId neg =
                neg_table[rng_.UniformInt(neg_table.size())];
            if (neg == walk[ctx]) continue;
            float* vn = out_vectors_.data() + neg * d;
            const float g = -FastSigmoid(Dot(vc, vn, d)) * lr;
            for (int64_t k = 0; k < d; ++k) {
              grad_center[static_cast<size_t>(k)] += g * vn[k];
              vn[k] += g * vc[k];
            }
          }
          for (int64_t k = 0; k < d; ++k) {
            vc[k] += grad_center[static_cast<size_t>(k)];
          }
        }
      }
    }
  }
}

Status RandomWalkEmbedding::Fit(const data::Dataset& dataset) {
  if (dataset.train_end == 0) {
    return Status::InvalidArgument("empty training split");
  }
  std::vector<std::vector<graph::NodeId>> walks;
  if (kind_ == Kind::kCtdne) {
    walks = GenerateTemporalWalks(dataset);
  } else {
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    edges.reserve(dataset.train_end);
    for (size_t i = 0; i < dataset.train_end; ++i) {
      edges.emplace_back(dataset.events[i].src, dataset.events[i].dst);
    }
    const auto graph =
        graph::StaticGraph::FromEdges(dataset.num_nodes, edges);
    walks = GenerateStaticWalks(graph);
  }
  num_walks_ = walks.size();
  TrainSgns(walks, dataset.num_nodes);
  fitted_ = true;
  return Status::OK();
}

std::vector<float> RandomWalkEmbedding::Embedding(
    graph::NodeId node) const {
  APAN_CHECK_MSG(fitted_, "Embedding() before Fit()");
  APAN_CHECK(node >= 0 && node < num_nodes_);
  const int64_t d = options_.dim;
  return std::vector<float>(
      in_vectors_.begin() + static_cast<size_t>(node * d),
      in_vectors_.begin() + static_cast<size_t>((node + 1) * d));
}

}  // namespace baselines
}  // namespace apan
