#include "baselines/gae.h"

#include <algorithm>
#include <functional>

#include "data/negative_sampler.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace apan {
namespace baselines {

using tensor::Tensor;

Gae::Gae(const Options& options, uint64_t seed, std::string name)
    : name_(name.empty() ? (options.variational ? "VGAE" : "GAE")
                         : std::move(name)),
      options_(options),
      rng_(seed),
      net_(options, &rng_),
      static_graph_(graph::StaticGraph::FromEdges(options.num_nodes, {})) {
  APAN_CHECK(options.num_nodes > 0 && options.dim > 0);
}

Gae::Encoded Gae::Encode(const std::vector<graph::NodeId>& nodes,
                         bool stochastic) {
  const int64_t d = options_.dim;
  const int64_t n = options_.fanout;

  // One shared sampled-mean aggregation step.
  auto aggregate = [&](const std::vector<graph::NodeId>& targets,
                       const std::function<Tensor(
                           const std::vector<graph::NodeId>&)>& embed_fn)
      -> std::pair<Tensor, Tensor> {
    const int64_t batch = static_cast<int64_t>(targets.size());
    SampledNeighborhood hood =
        SampleStaticNeighbors(static_graph_, targets, n, &rng_);
    std::vector<graph::NodeId> combined = targets;
    combined.insert(combined.end(), hood.neighbors.begin(),
                    hood.neighbors.end());
    Tensor lower = embed_fn(combined);
    std::vector<int64_t> self_rows(static_cast<size_t>(batch));
    std::vector<int64_t> nbr_rows(static_cast<size_t>(batch * n));
    for (int64_t i = 0; i < batch; ++i) self_rows[i] = i;
    for (int64_t i = 0; i < batch * n; ++i) nbr_rows[i] = batch + i;
    Tensor h_self = tensor::GatherRows(lower, self_rows);
    Tensor h_nbr = tensor::GatherRows(lower, nbr_rows);
    std::vector<float> vmask(static_cast<size_t>(batch * n * d));
    for (int64_t i = 0; i < batch * n; ++i) {
      std::fill_n(vmask.begin() + i * d,
                  d, hood.value_mask[static_cast<size_t>(i)]);
    }
    h_nbr = tensor::Mul(
        h_nbr, Tensor::FromVector({batch * n, d}, std::move(vmask)));
    Tensor mean = tensor::MeanDim1(tensor::Reshape(h_nbr, {batch, n, d}));
    std::vector<float> scale(static_cast<size_t>(batch * d));
    for (int64_t b = 0; b < batch; ++b) {
      std::fill_n(scale.begin() + b * d, d,
                  hood.inv_counts[static_cast<size_t>(b)]);
    }
    mean =
        tensor::Mul(mean, Tensor::FromVector({batch, d}, std::move(scale)));
    return {h_self, mean};
  };

  auto layer0 = [&](const std::vector<graph::NodeId>& ids) {
    std::vector<int64_t> rows(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      rows[i] = ids[i] >= 0 ? ids[i] : 0;
    }
    return net_.input.Forward(rows);
  };
  auto layer1 = [&](const std::vector<graph::NodeId>& ids) {
    auto [self, mean] = aggregate(ids, layer0);
    return tensor::Relu(
        net_.conv1.Forward(tensor::ConcatLastDim({self, mean})));
  };

  auto [self2, mean2] = aggregate(nodes, layer1);
  Tensor cat = tensor::ConcatLastDim({self2, mean2});
  Encoded out;
  out.mu = net_.mu_head.Forward(cat);
  out.z = out.mu;
  if (options_.variational) {
    out.logvar = net_.logvar_head.Forward(cat);
    if (stochastic) {
      // Reparameterization: z = mu + eps * exp(0.5 * logvar).
      Tensor eps = Tensor::Randn(out.mu.shape(), &rng_);
      Tensor std_dev = tensor::Exp(tensor::MulScalar(out.logvar, 0.5f));
      out.z = tensor::Add(out.mu, tensor::Mul(eps, std_dev));
    }
  }
  return out;
}

Status Gae::Fit(const data::Dataset& dataset) {
  if (dataset.train_end == 0) {
    return Status::InvalidArgument("empty training split");
  }
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  edges.reserve(dataset.train_end);
  for (size_t i = 0; i < dataset.train_end; ++i) {
    edges.emplace_back(dataset.events[i].src, dataset.events[i].dst);
  }
  static_graph_ = graph::StaticGraph::FromEdges(dataset.num_nodes, edges);

  tensor::Adam optimizer(net_.Parameters(), {.lr = options_.lr});
  data::NegativeSampler sampler(dataset.num_nodes);
  for (size_t i = 0; i < dataset.train_end; ++i) {
    sampler.Observe(dataset.events[i].src);
    sampler.Observe(dataset.events[i].dst);
  }

  std::vector<size_t> order(dataset.train_end);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end = std::min(order.size(), start + options_.batch_size);
      const size_t b = end - start;
      std::vector<graph::NodeId> nodes;
      nodes.reserve(3 * b);
      for (size_t i = start; i < end; ++i) {
        nodes.push_back(dataset.events[order[i]].src);
      }
      for (size_t i = start; i < end; ++i) {
        nodes.push_back(dataset.events[order[i]].dst);
      }
      for (size_t i = start; i < end; ++i) {
        nodes.push_back(
            sampler.Sample(&rng_, dataset.events[order[i]].dst));
      }
      Encoded enc = Encode(nodes, /*stochastic=*/true);
      std::vector<int64_t> src_rows(b), dst_rows(b), neg_rows(b);
      for (size_t i = 0; i < b; ++i) {
        src_rows[i] = static_cast<int64_t>(i);
        dst_rows[i] = static_cast<int64_t>(b + i);
        neg_rows[i] = static_cast<int64_t>(2 * b + i);
      }
      Tensor z_src = tensor::GatherRows(enc.z, src_rows);
      Tensor z_dst = tensor::GatherRows(enc.z, dst_rows);
      Tensor z_neg = tensor::GatherRows(enc.z, neg_rows);
      Tensor pos = tensor::RowwiseDot(z_src, z_dst);
      Tensor neg = tensor::RowwiseDot(z_src, z_neg);
      Tensor loss = tensor::MulScalar(
          tensor::Add(
              tensor::BceWithLogits(pos, std::vector<float>(b, 1.0f)),
              tensor::BceWithLogits(neg, std::vector<float>(b, 0.0f))),
          0.5f);
      if (options_.variational) {
        loss = tensor::Add(
            loss, tensor::MulScalar(tensor::GaussianKl(enc.mu, enc.logvar),
                                    options_.kl_weight));
      }
      optimizer.ZeroGrad();
      APAN_RETURN_NOT_OK(loss.Backward());
      optimizer.Step();
    }
  }

  // Cache deterministic (mean) embeddings for every node.
  cached_.assign(static_cast<size_t>(options_.num_nodes * options_.dim),
                 0.0f);
  {
    tensor::NoGradGuard no_grad;
    const size_t chunk = 1024;
    for (int64_t start = 0; start < options_.num_nodes;
         start += static_cast<int64_t>(chunk)) {
      const int64_t end = std::min<int64_t>(options_.num_nodes,
                                            start + static_cast<int64_t>(chunk));
      std::vector<graph::NodeId> nodes;
      for (int64_t v = start; v < end; ++v) nodes.push_back(v);
      Encoded enc = Encode(nodes, /*stochastic=*/false);
      std::copy_n(enc.mu.data(), (end - start) * options_.dim,
                  cached_.data() + start * options_.dim);
    }
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<float> Gae::Embedding(graph::NodeId node) const {
  APAN_CHECK_MSG(fitted_, "Embedding() before Fit()");
  APAN_CHECK(node >= 0 && node < options_.num_nodes);
  return std::vector<float>(
      cached_.begin() + static_cast<size_t>(node * options_.dim),
      cached_.begin() + static_cast<size_t>((node + 1) * options_.dim));
}

}  // namespace baselines
}  // namespace apan
