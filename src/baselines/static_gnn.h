// Static GNN baselines: GraphSAGE (Hamilton et al., 2017) and GAT
// (Velickovic et al., 2018), trained end-to-end on the link-prediction
// loss over the *static projection* of the training stream — the
// time-collapsed simplification of Figure 1(b). They plug into the same
// streaming harness but carry no temporal state: Consume is a no-op and
// embeddings are time-invariant.
//
// The datasets carry no node features, so layer 0 is a trainable node
// embedding table (which also makes these models transductive — unseen
// nodes keep their random initialization, matching the paper's
// observation that static methods handle inductive nodes poorly).

#ifndef APAN_BASELINES_STATIC_GNN_H_
#define APAN_BASELINES_STATIC_GNN_H_

#include <memory>
#include <string>

#include "core/decoder.h"
#include "graph/static_graph.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "train/temporal_model.h"

namespace apan {
namespace baselines {

/// \brief Sampled fixed-fanout neighborhood of a node list on a static
/// graph, with padding masks — shared by SAGE, GAT and the GAE encoder.
struct SampledNeighborhood {
  std::vector<graph::NodeId> neighbors;  ///< batch*fanout, -1 = padding.
  std::vector<float> attention_mask;     ///< batch*fanout additive mask.
  std::vector<float> value_mask;         ///< batch*fanout 0/1 multiplier.
  std::vector<float> inv_counts;         ///< per-batch n/valid scaling.
};

/// Samples up to `fanout` neighbors per node (all of them when degree is
/// small, uniform without replacement otherwise).
SampledNeighborhood SampleStaticNeighbors(const graph::StaticGraph& graph,
                                          const std::vector<graph::NodeId>&
                                              nodes,
                                          int64_t fanout, Rng* rng);

/// \brief GraphSAGE-mean or GAT over a static projection.
class StaticGnn : public train::TemporalModel {
 public:
  enum class Kind { kSage, kGat };

  struct Options {
    int64_t num_nodes = 0;
    int64_t dim = 0;
    int64_t num_layers = 2;
    int64_t fanout = 10;
    int64_t mlp_hidden = 80;
    float dropout = 0.1f;
  };

  StaticGnn(Kind kind, const Options& options, uint64_t seed,
            std::string name = "");

  std::string name() const override { return name_; }
  int64_t embedding_dim() const override { return options_.dim; }
  LinkScores ScoreLinks(const train::EventBatch& batch) override;
  EndpointEmbeddings EmbedEndpoints(const train::EventBatch& batch) override;
  Status Consume(const train::EventBatch& batch) override;
  void ResetState() override {}
  std::vector<tensor::Tensor> Parameters() override {
    return net_.Parameters();
  }
  void SetTraining(bool training) override { net_.SetTraining(training); }

  /// Embeds arbitrary nodes (used by classification probes).
  tensor::Tensor EmbedNodes(const std::vector<graph::NodeId>& nodes);

 private:
  class Net : public nn::Module {
   public:
    Net(Kind kind, const Options& o, Rng* rng);
    nn::EmbeddingTable input;
    // SAGE: per-layer Linear([self ‖ mean]) -> dim.
    std::vector<std::unique_ptr<nn::Linear>> sage_layers;
    // GAT: per-layer W, attention vectors a1, a2.
    struct GatLayer {
      GatLayer(int64_t dim, Rng* rng)
          : w(dim, dim, rng, /*bias=*/false),
            a_self(tensor::Tensor::XavierUniform(dim, 1, rng)),
            a_neighbor(tensor::Tensor::XavierUniform(dim, 1, rng)) {}
      nn::Linear w;
      tensor::Tensor a_self;      // {dim, 1}
      tensor::Tensor a_neighbor;  // {dim, 1}
    };
    std::vector<std::unique_ptr<GatLayer>> gat_layers;
    core::LinkDecoder decoder;
  };

  /// Builds the static projection from the dataset's training range on
  /// first use (cached; ResetState keeps it — the projection is a pure
  /// function of the dataset).
  void EnsureGraph(const data::Dataset& dataset);

  tensor::Tensor EmbedLayer(const std::vector<graph::NodeId>& nodes,
                            int64_t layer);

  Kind kind_;
  std::string name_;
  Options options_;
  Rng rng_;
  Net net_;
  bool graph_built_ = false;
  graph::StaticGraph static_graph_;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_STATIC_GNN_H_
