#include "baselines/tgn.h"

#include "tensor/ops.h"

namespace apan {
namespace baselines {

using tensor::Tensor;
using train::EventBatch;

Tgn::Tgn(const Options& options, const graph::EdgeFeatureStore* features,
         uint64_t seed, std::string name)
    : MemoryStreamModel({.num_nodes = options.num_nodes,
                         .dim = options.dim,
                         .mlp_hidden = options.mlp_hidden,
                         .dropout = options.dropout},
                        features, seed),
      name_(name.empty()
                ? "TGN-" + std::to_string(options.num_layers) + "layer"
                : std::move(name)),
      options_(options),
      net_(options, &time_encoding_, &rng_) {
  APAN_CHECK_MSG(features->dim() == options.dim,
                 "TGN config assumes dim == edge feature dim");
}

Tensor Tgn::BuildMessageInputs(
    const std::vector<const PendingMessage*>& messages) {
  const int64_t d = base_options_.dim;
  const int64_t k = static_cast<int64_t>(messages.size());
  // Constant parts: [s_self ‖ s_partner ‖ e]; Φ(Δt) appended in-graph.
  std::vector<float> flat(static_cast<size_t>(k * 3 * d), 0.0f);
  std::vector<double> deltas(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const PendingMessage& m = *messages[static_cast<size_t>(i)];
    float* row = flat.data() + i * 3 * d;
    std::copy(m.self_memory.begin(), m.self_memory.end(), row);
    std::copy(m.partner_memory.begin(), m.partner_memory.end(), row + d);
    if (m.edge_id >= 0) {
      std::copy_n(features_->Row(m.edge_id), d, row + 2 * d);
    }
    deltas[static_cast<size_t>(i)] = m.delta_t;
  }
  Tensor constants = Tensor::FromVector({k, 3 * d}, std::move(flat));
  Tensor phi = time_encoding_.Forward(deltas);
  return tensor::ConcatLastDim({constants, phi});
}

Tensor Tgn::EmbedTargets(const std::vector<TimedNode>& targets) {
  // In-graph memory update for the distinct target nodes (gradient path to
  // the GRU + time encoding); neighbors read raw memory.
  std::vector<graph::NodeId> target_nodes;
  target_nodes.reserve(targets.size());
  for (const TimedNode& t : targets) target_nodes.push_back(t.node);
  Tensor updated = UpdatedMemory(target_nodes);  // {T, d}, in-graph

  std::unordered_map<graph::NodeId, int64_t> row_of;
  for (size_t i = 0; i < target_nodes.size(); ++i) {
    row_of.try_emplace(target_nodes[i], static_cast<int64_t>(i));
  }

  const int64_t queries_before = graph_.query_count();
  Tensor out = net_.stack.Embed(
      graph_, *features_, targets,
      [&](const std::vector<TimedNode>& nodes) {
        // Layer 0: updated memory for batch nodes, raw memory otherwise.
        // Mixed assembly: concat [updated ‖ raw] then gather.
        std::vector<graph::NodeId> ids(nodes.size());
        for (size_t i = 0; i < nodes.size(); ++i) ids[i] = nodes[i].node;
        Tensor raw = RawMemory(ids);
        Tensor stacked = tensor::ConcatRows({updated, raw});
        const int64_t updated_rows = updated.dim(0);
        std::vector<int64_t> rows(nodes.size());
        for (size_t i = 0; i < nodes.size(); ++i) {
          auto it = nodes[i].node >= 0 ? row_of.find(nodes[i].node)
                                       : row_of.end();
          rows[i] = it != row_of.end()
                        ? it->second
                        : updated_rows + static_cast<int64_t>(i);
        }
        return tensor::GatherRows(stacked, rows);
      },
      &rng_);
  AddSyncQueries(graph_.query_count() - queries_before);
  return out;
}

train::TemporalModel::LinkScores Tgn::ScoreLinks(const EventBatch& batch) {
  APAN_CHECK(batch.negatives.size() == batch.size());
  const size_t b = batch.size();
  std::vector<TimedNode> targets;
  targets.reserve(3 * b);
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).src, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).dst, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.negatives[i], batch.event(i).timestamp});
  }
  Tensor all = EmbedTargets(targets);
  std::vector<int64_t> src_rows(b), dst_rows(b), neg_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
    neg_rows[i] = static_cast<int64_t>(2 * b + i);
  }
  LinkScores scores;
  scores.pos_logits = net_.decoder.Forward(
      tensor::GatherRows(all, src_rows), tensor::GatherRows(all, dst_rows),
      &rng_);
  scores.neg_logits = net_.decoder.Forward(
      tensor::GatherRows(all, src_rows), tensor::GatherRows(all, neg_rows),
      &rng_);
  return scores;
}

train::TemporalModel::EndpointEmbeddings Tgn::EmbedEndpoints(
    const EventBatch& batch) {
  const size_t b = batch.size();
  std::vector<TimedNode> targets;
  targets.reserve(2 * b);
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).src, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).dst, batch.event(i).timestamp});
  }
  Tensor all = EmbedTargets(targets);
  std::vector<int64_t> src_rows(b), dst_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
  }
  EndpointEmbeddings out;
  out.z_src = tensor::GatherRows(all, src_rows);
  out.z_dst = tensor::GatherRows(all, dst_rows);
  return out;
}

}  // namespace baselines
}  // namespace apan
