// DyRep baseline (Trivedi et al., ICLR 2019), in the formulation the TGN
// paper uses for comparison: recurrent node memory whose update message is
// built from the *partner's* state (localized embedding), with an identity
// read-out. Unlike JODIE there is no time-projection; unlike TGN there is
// no attention embedding module.

#ifndef APAN_BASELINES_DYREP_H_
#define APAN_BASELINES_DYREP_H_

#include <string>

#include "baselines/memory_stream.h"
#include "baselines/temporal_attention.h"  // TimedNode
#include "core/decoder.h"

namespace apan {
namespace baselines {

class DyRep : public MemoryStreamModel {
 public:
  struct Options {
    int64_t num_nodes = 0;
    int64_t dim = 0;
    int64_t mlp_hidden = 80;
    float dropout = 0.1f;
  };

  DyRep(const Options& options, const graph::EdgeFeatureStore* features,
        uint64_t seed, std::string name = "DyRep");

  std::string name() const override { return name_; }
  LinkScores ScoreLinks(const train::EventBatch& batch) override;
  EndpointEmbeddings EmbedEndpoints(const train::EventBatch& batch) override;
  std::vector<tensor::Tensor> Parameters() override {
    return net_.Parameters();
  }
  void SetTraining(bool training) override { net_.SetTraining(training); }

 protected:
  tensor::Tensor BuildMessageInputs(
      const std::vector<const PendingMessage*>& messages) override;
  nn::GruCell& CellFor(graph::NodeId /*node*/) override { return net_.cell; }

 private:
  class Net : public nn::Module {
   public:
    Net(const Options& o, nn::TimeEncoding* time_encoding, Rng* rng)
        : cell(2 * o.dim + o.dim, o.dim, rng),
          decoder(o.dim, o.mlp_hidden, rng) {
      RegisterChild(&cell);
      RegisterChild(&decoder);
      RegisterChild(time_encoding);
    }
    nn::GruCell cell;  // input: [s_partner ‖ e ‖ Φ(Δt)]
    core::LinkDecoder decoder;
  };

  tensor::Tensor Embeddings(const std::vector<TimedNode>& targets);

  std::string name_;
  Options options_;
  Net net_;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_DYREP_H_
