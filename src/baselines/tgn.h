// TGN baseline (Rossi et al., 2020): GRU node memory + temporal graph
// attention embedding. The strongest synchronous competitor in the paper —
// Figure 6 reports APAN at the same AP but 8.7x faster inference, because
// TGN's embedding module must query the temporal graph on the inference
// path while APAN reads a local mailbox.
//
// Messages: m_v = [s_v ‖ s_u ‖ e_uv ‖ Φ(Δt)], applied by a GRU with a
// one-batch lag (see memory_stream.h). Embedding: 1- or 2-layer temporal
// attention with h^0 = node memory.

#ifndef APAN_BASELINES_TGN_H_
#define APAN_BASELINES_TGN_H_

#include <string>

#include "baselines/memory_stream.h"
#include "baselines/temporal_attention.h"
#include "core/decoder.h"

namespace apan {
namespace baselines {

class Tgn : public MemoryStreamModel {
 public:
  struct Options {
    int64_t num_nodes = 0;
    int64_t dim = 0;
    int64_t num_heads = 2;
    int64_t num_layers = 2;   ///< Attention layers of the embedding module.
    int64_t fanout = 10;
    int64_t mlp_hidden = 80;
    float dropout = 0.1f;
  };

  Tgn(const Options& options, const graph::EdgeFeatureStore* features,
      uint64_t seed, std::string name = "");

  std::string name() const override { return name_; }
  LinkScores ScoreLinks(const train::EventBatch& batch) override;
  EndpointEmbeddings EmbedEndpoints(const train::EventBatch& batch) override;
  std::vector<tensor::Tensor> Parameters() override {
    return net_.Parameters();
  }
  void SetTraining(bool training) override { net_.SetTraining(training); }

 protected:
  tensor::Tensor BuildMessageInputs(
      const std::vector<const PendingMessage*>& messages) override;
  nn::GruCell& CellFor(graph::NodeId /*node*/) override {
    return net_.cell;
  }

 private:
  class Net : public nn::Module {
   public:
    Net(const Options& o, nn::TimeEncoding* time_encoding, Rng* rng)
        : cell(/*input_dim=*/3 * o.dim + o.dim, o.dim, rng),
          stack({.dim = o.dim,
                 .edge_dim = o.dim,
                 .time_dim = o.dim,
                 .num_heads = o.num_heads,
                 .num_layers = o.num_layers,
                 .fanout = o.fanout,
                 .mlp_hidden = o.mlp_hidden,
                 .dropout = o.dropout},
                rng),
          decoder(o.dim, o.mlp_hidden, rng) {
      RegisterChild(&cell);
      RegisterChild(&stack);
      RegisterChild(&decoder);
      RegisterChild(time_encoding);
    }
    nn::GruCell cell;
    TemporalAttentionStack stack;
    core::LinkDecoder decoder;
  };

  /// Embeds timed targets: attention stack over the graph with layer-0 =
  /// in-graph-updated memory for batch nodes, raw memory for neighbors.
  tensor::Tensor EmbedTargets(const std::vector<TimedNode>& targets);

  std::string name_;
  Options options_;
  Net net_;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_TGN_H_
