// JODIE baseline (Kumar et al., KDD 2019): dual recurrent memories (user
// and item RNNs on bipartite graphs) plus the time-projection read-out
//   ŝ_u(t) = (1 + Δt · w) ∘ s_u.
// No neighborhood aggregation — "JODIE ... only update[s] the related two
// nodes on an edge" (paper §2.4) — so it is fast but, per Figure 6,
// "limited by the expressive ability".

#ifndef APAN_BASELINES_JODIE_H_
#define APAN_BASELINES_JODIE_H_

#include <string>

#include "baselines/memory_stream.h"
#include "baselines/temporal_attention.h"  // TimedNode
#include "core/decoder.h"

namespace apan {
namespace baselines {

class Jodie : public MemoryStreamModel {
 public:
  struct Options {
    int64_t num_nodes = 0;
    /// Nodes < num_users use the user RNN; the rest the item RNN. Pass 0
    /// for non-bipartite graphs (single RNN).
    int64_t num_users = 0;
    int64_t dim = 0;
    int64_t mlp_hidden = 80;
    float dropout = 0.1f;
  };

  Jodie(const Options& options, const graph::EdgeFeatureStore* features,
        uint64_t seed, std::string name = "JODIE");

  std::string name() const override { return name_; }
  LinkScores ScoreLinks(const train::EventBatch& batch) override;
  EndpointEmbeddings EmbedEndpoints(const train::EventBatch& batch) override;
  std::vector<tensor::Tensor> Parameters() override {
    return net_.Parameters();
  }
  void SetTraining(bool training) override { net_.SetTraining(training); }

 protected:
  tensor::Tensor BuildMessageInputs(
      const std::vector<const PendingMessage*>& messages) override;
  nn::GruCell& CellFor(graph::NodeId node) override {
    if (options_.num_users > 0 && node >= options_.num_users) {
      return net_.item_cell;
    }
    return net_.user_cell;
  }

 private:
  class Net : public nn::Module {
   public:
    Net(const Options& o, nn::TimeEncoding* time_encoding, Rng* rng)
        : user_cell(2 * o.dim + o.dim, o.dim, rng),
          item_cell(2 * o.dim + o.dim, o.dim, rng),
          decoder(o.dim, o.mlp_hidden, rng) {
      RegisterChild(&user_cell);
      RegisterChild(&item_cell);
      RegisterChild(&decoder);
      RegisterChild(time_encoding);
      projection_w = tensor::Tensor::Zeros({1, o.dim}, true);
      RegisterParameter(projection_w);
    }
    nn::GruCell user_cell;   // input: [s_partner ‖ e ‖ Φ(Δt)]
    nn::GruCell item_cell;
    core::LinkDecoder decoder;
    tensor::Tensor projection_w;  // {1, dim} time-projection weights
  };

  /// \brief JODIE's projected embedding: memory (with in-graph pending
  /// update) scaled by (1 + Δt·w), Δt measured from the node's last event
  /// to each target's time.
  tensor::Tensor ProjectedEmbeddings(const std::vector<TimedNode>& targets);

  std::string name_;
  Options options_;
  Net net_;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_JODIE_H_
