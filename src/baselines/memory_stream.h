// Shared machinery for memory-based CTDG baselines (TGN, JODIE, DyRep).
//
// Each node keeps a memory vector s_v updated by a recurrent cell when the
// node interacts. Following the TGN implementation, messages are applied
// with a one-batch lag so the recurrent cell stays on the gradient path:
//
//   ScoreLinks(batch k):  memory of batch-k nodes is recomputed *in-graph*
//                         from their pending messages (created at batch
//                         k-1), so cell weights receive gradients;
//   Consume(batch k):     pending messages are flushed into the raw memory
//                         table (no gradients), then the batch's events
//                         create fresh pending messages and are appended
//                         to the temporal graph.
//
// A pending message stores raw ingredients (memory snapshots, edge id,
// Δt), not the assembled vector, so the trainable time encoding
// contributes gradients when the message is rebuilt in-graph.

#ifndef APAN_BASELINES_MEMORY_STREAM_H_
#define APAN_BASELINES_MEMORY_STREAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/edge_features.h"
#include "graph/temporal_graph.h"
#include "nn/recurrent.h"
#include "nn/time_encoding.h"
#include "tensor/tensor.h"
#include "train/temporal_model.h"

namespace apan {
namespace baselines {

/// \brief Base class: raw memory table + pending-message queue + streaming
/// protocol. Subclasses define the message layout, the recurrent cell
/// choice, and the embedding read-out.
class MemoryStreamModel : public train::TemporalModel {
 public:
  struct BaseOptions {
    int64_t num_nodes = 0;
    int64_t dim = 0;        ///< Memory/embedding dim = edge feature dim.
    int64_t mlp_hidden = 80;
    float dropout = 0.1f;
  };

  Status Consume(const train::EventBatch& batch) override;
  void ResetState() override;
  int64_t embedding_dim() const override { return base_options_.dim; }
  int64_t SyncPathGraphQueries() const override { return sync_queries_; }

 protected:
  /// Raw ingredients of one pending memory update.
  struct PendingMessage {
    bool valid = false;
    std::vector<float> self_memory;     ///< s_v at event time.
    std::vector<float> partner_memory;  ///< s_u of the other endpoint.
    graph::EdgeId edge_id = -1;
    double delta_t = 0.0;   ///< Event time − node's previous event time.
    double event_time = 0.0;
  };

  MemoryStreamModel(const BaseOptions& options,
                    const graph::EdgeFeatureStore* features, uint64_t seed);

  // ---- Hooks for subclasses ------------------------------------------------

  /// Assembles the recurrent-cell input rows {k, message_dim} for the
  /// given pending messages (in-graph; may use time_encoding_).
  virtual tensor::Tensor BuildMessageInputs(
      const std::vector<const PendingMessage*>& messages) = 0;

  /// The recurrent cell used for `node` (bipartite models pick per side).
  virtual nn::GruCell& CellFor(graph::NodeId node) = 0;

  // ---- Services for subclasses ---------------------------------------------

  /// \brief Memory of `nodes` with pending updates applied in-graph (cell
  /// weights and time encoding receive gradients). {nodes.size(), dim}.
  tensor::Tensor UpdatedMemory(const std::vector<graph::NodeId>& nodes);

  /// Raw memory rows as a constant tensor (no pending application).
  tensor::Tensor RawMemory(const std::vector<graph::NodeId>& nodes) const;

  /// Raw memory row pointer.
  const float* MemoryRow(graph::NodeId node) const;

  /// Δt from the node's last event to `now` (0 for never-seen nodes).
  double DeltaSinceLastEvent(graph::NodeId node, double now) const;

  void AddSyncQueries(int64_t n) { sync_queries_ += n; }

  BaseOptions base_options_;
  const graph::EdgeFeatureStore* features_;
  Rng rng_;
  graph::TemporalGraph graph_;
  nn::TimeEncoding time_encoding_;

 private:
  /// Applies all pending messages to the raw memory table (no grad).
  void FlushPending();
  /// Creates pending messages for the batch's events (later events of the
  /// same node overwrite earlier ones — last-message aggregation).
  void CreatePending(const train::EventBatch& batch);

  std::vector<float> memory_;            // num_nodes * dim
  std::vector<double> last_event_time_;  // num_nodes
  std::vector<PendingMessage> pending_;  // num_nodes
  std::vector<graph::NodeId> pending_nodes_;  // nodes with valid pending
  int64_t sync_queries_ = 0;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_MEMORY_STREAM_H_
