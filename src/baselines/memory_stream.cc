#include "baselines/memory_stream.h"

#include <algorithm>

#include "tensor/ops.h"

namespace apan {
namespace baselines {

using tensor::Tensor;
using train::EventBatch;

MemoryStreamModel::MemoryStreamModel(const BaseOptions& options,
                                     const graph::EdgeFeatureStore* features,
                                     uint64_t seed)
    : base_options_(options),
      features_(features),
      rng_(seed),
      graph_(options.num_nodes),
      time_encoding_(options.dim, &rng_),
      memory_(static_cast<size_t>(options.num_nodes * options.dim), 0.0f),
      last_event_time_(static_cast<size_t>(options.num_nodes), 0.0),
      pending_(static_cast<size_t>(options.num_nodes)) {
  APAN_CHECK(features != nullptr);
  APAN_CHECK(options.num_nodes > 0 && options.dim > 0);
}

const float* MemoryStreamModel::MemoryRow(graph::NodeId node) const {
  APAN_CHECK(node >= 0 && node < base_options_.num_nodes);
  return memory_.data() + static_cast<size_t>(node * base_options_.dim);
}

double MemoryStreamModel::DeltaSinceLastEvent(graph::NodeId node,
                                              double now) const {
  APAN_CHECK(node >= 0 && node < base_options_.num_nodes);
  const double last = last_event_time_[static_cast<size_t>(node)];
  return last > 0.0 ? std::max(0.0, now - last) : 0.0;
}

Tensor MemoryStreamModel::RawMemory(
    const std::vector<graph::NodeId>& nodes) const {
  const int64_t d = base_options_.dim;
  std::vector<float> out(nodes.size() * static_cast<size_t>(d), 0.0f);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] < 0) continue;  // padding row stays zero
    std::copy_n(MemoryRow(nodes[i]), d,
                out.data() + i * static_cast<size_t>(d));
  }
  return Tensor::FromVector({static_cast<int64_t>(nodes.size()), d},
                            std::move(out));
}

Tensor MemoryStreamModel::UpdatedMemory(
    const std::vector<graph::NodeId>& nodes) {
  // Collect the distinct nodes that have pending updates.
  std::vector<graph::NodeId> with_pending;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const graph::NodeId v = nodes[i];
    if (v >= 0 && pending_[static_cast<size_t>(v)].valid &&
        std::find(with_pending.begin(), with_pending.end(), v) ==
            with_pending.end()) {
      with_pending.push_back(v);
    }
  }
  Tensor raw = RawMemory(nodes);
  if (with_pending.empty()) return raw;

  // In-graph recurrent update for the pending subset. Cells may differ per
  // node (bipartite JODIE), so group nodes by cell.
  std::unordered_map<nn::GruCell*, std::vector<graph::NodeId>> by_cell;
  for (graph::NodeId v : with_pending) by_cell[&CellFor(v)].push_back(v);

  std::unordered_map<graph::NodeId, std::pair<const Tensor*, int64_t>>
      updated_row;
  std::vector<Tensor> group_outputs;
  group_outputs.reserve(by_cell.size());
  for (auto& [cell, members] : by_cell) {
    std::vector<const PendingMessage*> msgs;
    msgs.reserve(members.size());
    for (graph::NodeId v : members) {
      msgs.push_back(&pending_[static_cast<size_t>(v)]);
    }
    Tensor inputs = BuildMessageInputs(msgs);
    Tensor prev = RawMemory(members);
    group_outputs.push_back(cell->Forward(inputs, prev));
    for (size_t i = 0; i < members.size(); ++i) {
      updated_row[members[i]] = {&group_outputs.back(),
                                 static_cast<int64_t>(i)};
    }
  }

  // Assemble the final {nodes, d} tensor: updated rows from the cell
  // outputs, others from the raw constant.
  std::vector<Tensor> parts;
  std::vector<int64_t> part_row;  // row into the concatenated tensor
  parts.push_back(raw);
  int64_t offset = static_cast<int64_t>(nodes.size());
  std::unordered_map<const Tensor*, int64_t> tensor_offset;
  tensor_offset[&raw] = 0;
  for (const Tensor& g : group_outputs) {
    parts.push_back(g);
    tensor_offset[&g] = offset;
    offset += g.dim(0);
  }
  Tensor stacked = tensor::ConcatRows(parts);
  std::vector<int64_t> final_rows(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const graph::NodeId v = nodes[i];
    auto it = v >= 0 ? updated_row.find(v) : updated_row.end();
    if (it == updated_row.end()) {
      final_rows[i] = static_cast<int64_t>(i);  // raw row
    } else {
      final_rows[i] = tensor_offset.at(it->second.first) + it->second.second;
    }
  }
  return tensor::GatherRows(stacked, final_rows);
}

void MemoryStreamModel::FlushPending() {
  if (pending_nodes_.empty()) return;
  tensor::NoGradGuard no_grad;
  const int64_t d = base_options_.dim;
  std::unordered_map<nn::GruCell*, std::vector<graph::NodeId>> by_cell;
  for (graph::NodeId v : pending_nodes_) by_cell[&CellFor(v)].push_back(v);
  for (auto& [cell, members] : by_cell) {
    std::vector<const PendingMessage*> msgs;
    for (graph::NodeId v : members) {
      msgs.push_back(&pending_[static_cast<size_t>(v)]);
    }
    Tensor inputs = BuildMessageInputs(msgs);
    Tensor prev = RawMemory(members);
    Tensor updated = cell->Forward(inputs, prev);
    const float* rows = updated.data();
    for (size_t i = 0; i < members.size(); ++i) {
      std::copy_n(rows + i * static_cast<size_t>(d), d,
                  memory_.data() +
                      static_cast<size_t>(members[i] * d));
    }
  }
  for (graph::NodeId v : pending_nodes_) {
    pending_[static_cast<size_t>(v)] = PendingMessage{};
  }
  pending_nodes_.clear();
}

void MemoryStreamModel::CreatePending(const EventBatch& batch) {
  const int64_t d = base_options_.dim;
  auto create = [&](graph::NodeId self, graph::NodeId partner,
                    const graph::Event& e) {
    PendingMessage& msg = pending_[static_cast<size_t>(self)];
    if (!msg.valid) pending_nodes_.push_back(self);
    msg.valid = true;
    msg.self_memory.assign(MemoryRow(self), MemoryRow(self) + d);
    msg.partner_memory.assign(MemoryRow(partner), MemoryRow(partner) + d);
    msg.edge_id = e.edge_id;
    msg.delta_t = DeltaSinceLastEvent(self, e.timestamp);
    msg.event_time = e.timestamp;
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    const graph::Event& e = batch.event(i);
    create(e.src, e.dst, e);
    if (e.dst != e.src) create(e.dst, e.src, e);
    last_event_time_[static_cast<size_t>(e.src)] = e.timestamp;
    last_event_time_[static_cast<size_t>(e.dst)] = e.timestamp;
  }
}

Status MemoryStreamModel::Consume(const EventBatch& batch) {
  FlushPending();
  CreatePending(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    APAN_RETURN_NOT_OK(graph_.AddEvent(batch.event(i)));
  }
  return Status::OK();
}

void MemoryStreamModel::ResetState() {
  std::fill(memory_.begin(), memory_.end(), 0.0f);
  std::fill(last_event_time_.begin(), last_event_time_.end(), 0.0);
  for (graph::NodeId v : pending_nodes_) {
    pending_[static_cast<size_t>(v)] = PendingMessage{};
  }
  pending_nodes_.clear();
  graph_.Reset();
  graph_.ResetQueryCount();
  sync_queries_ = 0;
}

}  // namespace baselines
}  // namespace apan
