#include "baselines/dyrep.h"

#include "tensor/ops.h"

namespace apan {
namespace baselines {

using tensor::Tensor;
using train::EventBatch;

DyRep::DyRep(const Options& options, const graph::EdgeFeatureStore* features,
             uint64_t seed, std::string name)
    : MemoryStreamModel({.num_nodes = options.num_nodes,
                         .dim = options.dim,
                         .mlp_hidden = options.mlp_hidden,
                         .dropout = options.dropout},
                        features, seed),
      name_(std::move(name)),
      options_(options),
      net_(options, &time_encoding_, &rng_) {
  APAN_CHECK_MSG(features->dim() == options.dim,
                 "DyRep config assumes dim == edge feature dim");
}

Tensor DyRep::BuildMessageInputs(
    const std::vector<const PendingMessage*>& messages) {
  const int64_t d = base_options_.dim;
  const int64_t k = static_cast<int64_t>(messages.size());
  std::vector<float> flat(static_cast<size_t>(k * 2 * d), 0.0f);
  std::vector<double> deltas(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const PendingMessage& m = *messages[static_cast<size_t>(i)];
    float* row = flat.data() + i * 2 * d;
    std::copy(m.partner_memory.begin(), m.partner_memory.end(), row);
    if (m.edge_id >= 0) std::copy_n(features_->Row(m.edge_id), d, row + d);
    deltas[static_cast<size_t>(i)] = m.delta_t;
  }
  Tensor constants = Tensor::FromVector({k, 2 * d}, std::move(flat));
  return tensor::ConcatLastDim({constants, time_encoding_.Forward(deltas)});
}

Tensor DyRep::Embeddings(const std::vector<TimedNode>& targets) {
  std::vector<graph::NodeId> nodes;
  nodes.reserve(targets.size());
  for (const TimedNode& t : targets) nodes.push_back(t.node);
  return UpdatedMemory(nodes);  // identity read-out
}

train::TemporalModel::LinkScores DyRep::ScoreLinks(const EventBatch& batch) {
  APAN_CHECK(batch.negatives.size() == batch.size());
  const size_t b = batch.size();
  std::vector<TimedNode> targets;
  targets.reserve(3 * b);
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).src, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).dst, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.negatives[i], batch.event(i).timestamp});
  }
  Tensor all = Embeddings(targets);
  std::vector<int64_t> src_rows(b), dst_rows(b), neg_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
    neg_rows[i] = static_cast<int64_t>(2 * b + i);
  }
  LinkScores scores;
  scores.pos_logits = net_.decoder.Forward(
      tensor::GatherRows(all, src_rows), tensor::GatherRows(all, dst_rows),
      &rng_);
  scores.neg_logits = net_.decoder.Forward(
      tensor::GatherRows(all, src_rows), tensor::GatherRows(all, neg_rows),
      &rng_);
  return scores;
}

train::TemporalModel::EndpointEmbeddings DyRep::EmbedEndpoints(
    const EventBatch& batch) {
  const size_t b = batch.size();
  std::vector<TimedNode> targets;
  targets.reserve(2 * b);
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).src, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).dst, batch.event(i).timestamp});
  }
  Tensor all = Embeddings(targets);
  std::vector<int64_t> src_rows(b), dst_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
  }
  EndpointEmbeddings out;
  out.z_src = tensor::GatherRows(all, src_rows);
  out.z_dst = tensor::GatherRows(all, dst_rows);
  return out;
}

}  // namespace baselines
}  // namespace apan
