#include "baselines/temporal_attention.h"

#include "tensor/ops.h"

namespace apan {
namespace baselines {

using tensor::Tensor;

TemporalAttentionStack::TemporalAttentionStack(const Options& options,
                                               Rng* rng)
    : options_(options), time_encoding_(TimeDim(options), rng) {
  APAN_CHECK(options.dim > 0 && options.edge_dim > 0 &&
             options.num_layers >= 1 && options.fanout > 0);
  RegisterChild(&time_encoding_);
  for (int64_t l = 0; l < options.num_layers; ++l) {
    layers_.push_back(std::make_unique<Layer>(options, rng));
    RegisterChild(&layers_.back()->attention);
    RegisterChild(&layers_.back()->merge);
  }
}

Tensor TemporalAttentionStack::Embed(const graph::TemporalGraph& graph,
                                     const graph::EdgeFeatureStore& features,
                                     const std::vector<TimedNode>& targets,
                                     const BaseFn& base,
                                     Rng* dropout_rng) const {
  APAN_CHECK_MSG(!targets.empty(), "Embed on empty target list");
  return EmbedLayer(graph, features, targets, base, options_.num_layers,
                    dropout_rng);
}

Tensor TemporalAttentionStack::EmbedLayer(
    const graph::TemporalGraph& graph,
    const graph::EdgeFeatureStore& features,
    const std::vector<TimedNode>& targets, const BaseFn& base,
    int64_t layer, Rng* dropout_rng) const {
  if (layer == 0) return base(targets);

  const int64_t batch = static_cast<int64_t>(targets.size());
  const int64_t n = options_.fanout;
  const int64_t d = options_.dim;

  // Sample most-recent temporal neighbors for every target (pad with
  // node = -1 / edge = -1 / dt = 0 and mask the padding).
  std::vector<TimedNode> neighbor_nodes(
      static_cast<size_t>(batch * n), TimedNode{-1, 0.0});
  std::vector<graph::EdgeId> edge_ids(static_cast<size_t>(batch * n), -1);
  std::vector<double> deltas(static_cast<size_t>(batch * n), 0.0);
  std::vector<float> mask(static_cast<size_t>(batch * n), 0.0f);
  for (int64_t b = 0; b < batch; ++b) {
    const TimedNode& target = targets[static_cast<size_t>(b)];
    if (target.node < 0) continue;  // padding target: no neighbors
    const auto nbrs =
        graph.MostRecentNeighbors(target.node, target.time, n);
    const int64_t valid = static_cast<int64_t>(nbrs.size());
    for (int64_t i = 0; i < valid; ++i) {
      const auto& nb = nbrs[static_cast<size_t>(i)];
      const size_t slot = static_cast<size_t>(b * n + i);
      neighbor_nodes[slot] = {nb.node, nb.timestamp};
      edge_ids[slot] = nb.edge_id;
      deltas[slot] = target.time - nb.timestamp;
    }
    // Mask padding unless the whole row is empty (then a uniform softmax
    // over zero rows is the stable cold-start).
    if (valid > 0) {
      for (int64_t i = valid; i < n; ++i) {
        mask[static_cast<size_t>(b * n + i)] =
            nn::MultiHeadAttention::kMaskedOut;
      }
    }
  }

  // One recursive call embeds targets and neighbors together.
  std::vector<TimedNode> combined = targets;
  combined.insert(combined.end(), neighbor_nodes.begin(),
                  neighbor_nodes.end());
  Tensor lower =
      EmbedLayer(graph, features, combined, base, layer - 1, dropout_rng);
  std::vector<int64_t> target_rows(static_cast<size_t>(batch));
  std::vector<int64_t> neighbor_rows(static_cast<size_t>(batch * n));
  for (int64_t i = 0; i < batch; ++i) target_rows[i] = i;
  for (int64_t i = 0; i < batch * n; ++i) neighbor_rows[i] = batch + i;
  Tensor h_prev = tensor::GatherRows(lower, target_rows);      // {B, d}
  Tensor h_nbrs = tensor::GatherRows(lower, neighbor_rows);    // {B*n, d}

  // Keys/values: [h_u ‖ e_uv ‖ Φ(dt)].
  Tensor edge_feats = features.Gather(edge_ids);               // {B*n, de}
  Tensor time_feats = time_encoding_.Forward(deltas);          // {B*n, dt}
  Tensor kv = tensor::ConcatLastDim({h_nbrs, edge_feats, time_feats});
  kv = tensor::Reshape(
      kv, {batch, n, d + options_.edge_dim + TimeDim(options_)});

  // Query: [h_v ‖ Φ(0)].
  Tensor zero_time = time_encoding_.Forward(
      std::vector<double>(static_cast<size_t>(batch), 0.0));
  Tensor query = tensor::ConcatLastDim({h_prev, zero_time});

  const Layer& layer_modules = *layers_[static_cast<size_t>(layer - 1)];
  nn::AttentionOutput attn =
      layer_modules.attention.Forward(query, kv, kv, &mask);
  Tensor merged = layer_modules.merge.Forward(
      tensor::ConcatLastDim({attn.output, h_prev}), dropout_rng);
  return merged;
}

}  // namespace baselines
}  // namespace apan
