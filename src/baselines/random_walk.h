// Shallow embedding baselines: DeepWalk (uniform walks), Node2Vec (biased
// second-order walks), CTDNE (temporal walks with non-decreasing edge
// times). All three feed a shared skip-gram-with-negative-sampling (SGNS)
// trainer, hand-rolled with Hogwild-free plain SGD (no autograd — the
// classic formulation).
//
// These are the transductive, task-agnostic baselines of Table 2; the
// paper notes their "limited and indirect contribution to downstream
// tasks", which the probes in train/probe.h make measurable.

#ifndef APAN_BASELINES_RANDOM_WALK_H_
#define APAN_BASELINES_RANDOM_WALK_H_

#include <string>
#include <vector>

#include "graph/static_graph.h"
#include "train/static_model.h"

namespace apan {
namespace baselines {

class RandomWalkEmbedding : public train::StaticEmbeddingModel {
 public:
  enum class Kind { kDeepWalk, kNode2Vec, kCtdne };

  struct Options {
    int64_t dim = 32;
    int64_t walks_per_node = 8;
    int64_t walk_length = 16;
    int64_t window = 5;
    int64_t negatives = 5;
    int64_t epochs = 2;
    float lr = 0.025f;
    /// Node2Vec return/in-out parameters (ignored by the others).
    double p = 0.5;
    double q = 2.0;
  };

  RandomWalkEmbedding(Kind kind, const Options& options, uint64_t seed,
                      std::string name = "");

  std::string name() const override { return name_; }
  int64_t dim() const override { return options_.dim; }
  Status Fit(const data::Dataset& dataset) override;
  std::vector<float> Embedding(graph::NodeId node) const override;

  /// Walk corpus size from the last Fit (tests / diagnostics).
  size_t num_walks() const { return num_walks_; }

 private:
  std::vector<std::vector<graph::NodeId>> GenerateStaticWalks(
      const graph::StaticGraph& graph);
  std::vector<std::vector<graph::NodeId>> GenerateTemporalWalks(
      const data::Dataset& dataset);
  void TrainSgns(const std::vector<std::vector<graph::NodeId>>& walks,
                 int64_t num_nodes);

  Kind kind_;
  std::string name_;
  Options options_;
  Rng rng_;
  std::vector<float> in_vectors_;   // num_nodes * dim
  std::vector<float> out_vectors_;  // num_nodes * dim
  int64_t num_nodes_ = 0;
  size_t num_walks_ = 0;
  bool fitted_ = false;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_RANDOM_WALK_H_
