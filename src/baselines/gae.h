// GAE / VGAE baselines (Kipf & Welling, 2016): graph auto-encoder with a
// two-layer graph-convolutional encoder (sampled-mean aggregation over the
// static training projection) and an inner-product decoder, trained on
// edge reconstruction; VGAE adds the reparameterized Gaussian latent and
// KL regularizer.

#ifndef APAN_BASELINES_GAE_H_
#define APAN_BASELINES_GAE_H_

#include <memory>
#include <string>

#include "baselines/static_gnn.h"
#include "graph/static_graph.h"
#include "nn/layers.h"
#include "train/static_model.h"

namespace apan {
namespace baselines {

class Gae : public train::StaticEmbeddingModel {
 public:
  struct Options {
    int64_t num_nodes = 0;
    int64_t dim = 0;
    int64_t fanout = 10;
    int64_t epochs = 3;
    size_t batch_size = 512;
    float lr = 1e-2f;
    float kl_weight = 1e-2f;  ///< VGAE only.
    bool variational = false;
  };

  Gae(const Options& options, uint64_t seed, std::string name = "");

  std::string name() const override { return name_; }
  int64_t dim() const override { return options_.dim; }
  Status Fit(const data::Dataset& dataset) override;
  std::vector<float> Embedding(graph::NodeId node) const override;

 private:
  class Net : public nn::Module {
   public:
    Net(const Options& o, Rng* rng)
        : input(o.num_nodes, o.dim, rng),
          conv1(2 * o.dim, o.dim, rng),
          mu_head(2 * o.dim, o.dim, rng),
          logvar_head(2 * o.dim, o.dim, rng) {
      RegisterChild(&input);
      RegisterChild(&conv1);
      RegisterChild(&mu_head);
      if (o.variational) RegisterChild(&logvar_head);
    }
    nn::EmbeddingTable input;
    nn::Linear conv1;        // layer 1: [self ‖ mean(nbrs)] -> dim
    nn::Linear mu_head;      // layer 2 (mu)
    nn::Linear logvar_head;  // layer 2 (logvar, VGAE)
  };

  struct Encoded {
    tensor::Tensor mu;
    tensor::Tensor logvar;  ///< Undefined for plain GAE.
    tensor::Tensor z;       ///< Sampled latent (== mu when deterministic).
  };
  Encoded Encode(const std::vector<graph::NodeId>& nodes, bool stochastic);

  std::string name_;
  Options options_;
  Rng rng_;
  Net net_;
  graph::StaticGraph static_graph_;
  std::vector<float> cached_;  ///< num_nodes * dim after Fit.
  bool fitted_ = false;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_GAE_H_
