// L-layer temporal graph attention (TGAT, Xu et al. 2020; also the
// embedding module of TGN). Each layer embeds a (node, time) target by
// attending over its most-recent temporal neighbors, with keys/values
//   [ h^{l-1}_u(t_u) ‖ e_uv ‖ Φ(t - t_u) ]
// and query
//   [ h^{l-1}_v(t) ‖ Φ(0) ].
//
// This is the *synchronous* aggregation APAN replaces: every Embed call
// queries the temporal graph on the inference path (the queries are
// counted by the graph store and surface in Figure 6's decomposition).

#ifndef APAN_BASELINES_TEMPORAL_ATTENTION_H_
#define APAN_BASELINES_TEMPORAL_ATTENTION_H_

#include <functional>
#include <memory>
#include <vector>

#include "graph/edge_features.h"
#include "graph/temporal_graph.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/time_encoding.h"

namespace apan {
namespace baselines {

/// A node to embed as of a given time.
struct TimedNode {
  graph::NodeId node = -1;
  double time = 0.0;
};

/// \brief Stack of temporal attention layers.
class TemporalAttentionStack : public nn::Module {
 public:
  struct Options {
    int64_t dim = 0;        ///< Node embedding dim (model dim).
    int64_t edge_dim = 0;   ///< Edge feature dim.
    int64_t time_dim = 0;   ///< Time-encoding dim (0 = dim).
    int64_t num_heads = 2;
    int64_t num_layers = 2;
    int64_t fanout = 10;    ///< Most-recent neighbors per layer.
    int64_t mlp_hidden = 80;
    float dropout = 0.1f;
  };

  TemporalAttentionStack(const Options& options, Rng* rng);

  /// Supplies layer-0 embeddings for a list of timed nodes (zeros for
  /// TGAT, node memory for TGN). Must return a zero row for node == -1
  /// (padding slots).
  using BaseFn =
      std::function<tensor::Tensor(const std::vector<TimedNode>&)>;

  /// \brief Embeds `targets` with `num_layers` rounds of temporal
  /// attention over `graph`. Queries the graph (counted).
  tensor::Tensor Embed(const graph::TemporalGraph& graph,
                       const graph::EdgeFeatureStore& features,
                       const std::vector<TimedNode>& targets,
                       const BaseFn& base, Rng* dropout_rng) const;

  int64_t dim() const { return options_.dim; }
  int64_t num_layers() const { return options_.num_layers; }

 private:
  struct Layer {
    Layer(const Options& o, Rng* rng)
        : attention(o.dim, o.num_heads, rng,
                    /*key_dim=*/o.dim + o.edge_dim + TimeDim(o),
                    /*value_dim=*/o.dim + o.edge_dim + TimeDim(o),
                    /*query_dim=*/o.dim + TimeDim(o)),
          merge(2 * o.dim, o.mlp_hidden, o.dim, rng, o.dropout) {}
    nn::MultiHeadAttention attention;
    nn::Mlp merge;
  };

  static int64_t TimeDim(const Options& o) {
    return o.time_dim > 0 ? o.time_dim : o.dim;
  }

  tensor::Tensor EmbedLayer(const graph::TemporalGraph& graph,
                            const graph::EdgeFeatureStore& features,
                            const std::vector<TimedNode>& targets,
                            const BaseFn& base, int64_t layer,
                            Rng* dropout_rng) const;

  Options options_;
  nn::TimeEncoding time_encoding_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_TEMPORAL_ATTENTION_H_
