#include "baselines/tgat.h"

#include "tensor/ops.h"
#include "util/status.h"

namespace apan {
namespace baselines {

using tensor::Tensor;
using train::EventBatch;

Tgat::Tgat(const Options& options, const graph::EdgeFeatureStore* features,
           uint64_t seed, std::string name)
    : name_(name.empty()
                ? "TGAT-" + std::to_string(options.num_layers) + "layer"
                : std::move(name)),
      options_(options),
      features_(features),
      rng_(seed),
      graph_(options.num_nodes),
      net_(options, &rng_) {
  APAN_CHECK(features != nullptr);
  APAN_CHECK_MSG(features->dim() == options.dim,
                 "TGAT config assumes dim == edge feature dim");
}

Tensor Tgat::EmbedTargets(const std::vector<TimedNode>& targets) {
  const int64_t queries_before = graph_.query_count();
  Tensor out = net_.stack.Embed(
      graph_, *features_, targets,
      [&](const std::vector<TimedNode>& nodes) {
        // Layer 0: zero node features (paper setup: "node features are
        // not present in any of these datasets").
        return Tensor::Zeros(
            {static_cast<int64_t>(nodes.size()), options_.dim});
      },
      &rng_);
  sync_queries_ += graph_.query_count() - queries_before;
  return out;
}

train::TemporalModel::LinkScores Tgat::ScoreLinks(const EventBatch& batch) {
  APAN_CHECK(batch.negatives.size() == batch.size());
  const size_t b = batch.size();
  std::vector<TimedNode> targets;
  targets.reserve(3 * b);
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).src, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).dst, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.negatives[i], batch.event(i).timestamp});
  }
  Tensor all = EmbedTargets(targets);
  std::vector<int64_t> src_rows(b), dst_rows(b), neg_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
    neg_rows[i] = static_cast<int64_t>(2 * b + i);
  }
  Tensor z_src = tensor::GatherRows(all, src_rows);
  Tensor z_dst = tensor::GatherRows(all, dst_rows);
  Tensor z_neg = tensor::GatherRows(all, neg_rows);
  LinkScores scores;
  scores.pos_logits = net_.decoder.Forward(z_src, z_dst, &rng_);
  scores.neg_logits = net_.decoder.Forward(z_src, z_neg, &rng_);
  return scores;
}

train::TemporalModel::EndpointEmbeddings Tgat::EmbedEndpoints(
    const EventBatch& batch) {
  const size_t b = batch.size();
  std::vector<TimedNode> targets;
  targets.reserve(2 * b);
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).src, batch.event(i).timestamp});
  }
  for (size_t i = 0; i < b; ++i) {
    targets.push_back({batch.event(i).dst, batch.event(i).timestamp});
  }
  Tensor all = EmbedTargets(targets);
  std::vector<int64_t> src_rows(b), dst_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
  }
  EndpointEmbeddings out;
  out.z_src = tensor::GatherRows(all, src_rows);
  out.z_dst = tensor::GatherRows(all, dst_rows);
  return out;
}

Status Tgat::Consume(const EventBatch& batch) {
  for (size_t i = 0; i < batch.size(); ++i) {
    APAN_RETURN_NOT_OK(graph_.AddEvent(batch.event(i)));
  }
  return Status::OK();
}

void Tgat::ResetState() {
  graph_.Reset();
  graph_.ResetQueryCount();
  sync_queries_ = 0;
}

}  // namespace baselines
}  // namespace apan
