#include "baselines/static_gnn.h"

#include <algorithm>

#include "tensor/ops.h"

namespace apan {
namespace baselines {

using tensor::Tensor;
using train::EventBatch;

SampledNeighborhood SampleStaticNeighbors(
    const graph::StaticGraph& graph, const std::vector<graph::NodeId>& nodes,
    int64_t fanout, Rng* rng) {
  const int64_t batch = static_cast<int64_t>(nodes.size());
  SampledNeighborhood out;
  out.neighbors.assign(static_cast<size_t>(batch * fanout), -1);
  out.attention_mask.assign(static_cast<size_t>(batch * fanout), 0.0f);
  out.value_mask.assign(static_cast<size_t>(batch * fanout), 0.0f);
  out.inv_counts.assign(static_cast<size_t>(batch), 0.0f);
  for (int64_t b = 0; b < batch; ++b) {
    const graph::NodeId v = nodes[static_cast<size_t>(b)];
    const auto nbrs =
        v >= 0 ? graph.Neighbors(v) : std::span<const graph::NodeId>{};
    int64_t valid = 0;
    if (static_cast<int64_t>(nbrs.size()) <= fanout) {
      for (size_t i = 0; i < nbrs.size(); ++i) {
        out.neighbors[static_cast<size_t>(b * fanout) + i] = nbrs[i];
      }
      valid = static_cast<int64_t>(nbrs.size());
    } else {
      auto picks = rng->SampleWithoutReplacement(
          nbrs.size(), static_cast<size_t>(fanout));
      for (size_t i = 0; i < picks.size(); ++i) {
        out.neighbors[static_cast<size_t>(b * fanout) + i] =
            nbrs[picks[i]];
      }
      valid = fanout;
    }
    for (int64_t i = 0; i < valid; ++i) {
      out.value_mask[static_cast<size_t>(b * fanout + i)] = 1.0f;
    }
    if (valid > 0) {
      for (int64_t i = valid; i < fanout; ++i) {
        out.attention_mask[static_cast<size_t>(b * fanout + i)] =
            nn::MultiHeadAttention::kMaskedOut;
      }
    }
    out.inv_counts[static_cast<size_t>(b)] =
        valid > 0 ? static_cast<float>(fanout) / static_cast<float>(valid)
                  : 0.0f;
  }
  return out;
}

StaticGnn::Net::Net(Kind kind, const Options& o, Rng* rng)
    : input(o.num_nodes, o.dim, rng),
      decoder(o.dim, o.mlp_hidden, rng) {
  RegisterChild(&input);
  RegisterChild(&decoder);
  for (int64_t l = 0; l < o.num_layers; ++l) {
    if (kind == Kind::kSage) {
      sage_layers.push_back(
          std::make_unique<nn::Linear>(2 * o.dim, o.dim, rng));
      RegisterChild(sage_layers.back().get());
    } else {
      gat_layers.push_back(std::make_unique<GatLayer>(o.dim, rng));
      RegisterChild(&gat_layers.back()->w);
      RegisterParameter(gat_layers.back()->a_self);
      RegisterParameter(gat_layers.back()->a_neighbor);
    }
  }
}

StaticGnn::StaticGnn(Kind kind, const Options& options, uint64_t seed,
                     std::string name)
    : kind_(kind),
      name_(name.empty() ? (kind == Kind::kSage ? "SAGE" : "GAT")
                         : std::move(name)),
      options_(options),
      rng_(seed),
      net_(kind, options, &rng_),
      static_graph_(graph::StaticGraph::FromEdges(options.num_nodes, {})) {
  APAN_CHECK(options.num_nodes > 0 && options.dim > 0 &&
             options.num_layers >= 1);
}

void StaticGnn::EnsureGraph(const data::Dataset& dataset) {
  if (graph_built_) return;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  edges.reserve(dataset.train_end);
  for (size_t i = 0; i < dataset.train_end; ++i) {
    edges.emplace_back(dataset.events[i].src, dataset.events[i].dst);
  }
  static_graph_ = graph::StaticGraph::FromEdges(dataset.num_nodes, edges);
  graph_built_ = true;
}

Tensor StaticGnn::EmbedLayer(const std::vector<graph::NodeId>& nodes,
                             int64_t layer) {
  const int64_t d = options_.dim;
  if (layer == 0) {
    // Trainable input embeddings; padding rows (-1) become zero via mask
    // multiplication in the caller, so map them to row 0 here.
    std::vector<int64_t> rows(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      rows[i] = nodes[i] >= 0 ? nodes[i] : 0;
    }
    return net_.input.Forward(rows);
  }

  const int64_t batch = static_cast<int64_t>(nodes.size());
  const int64_t n = options_.fanout;
  SampledNeighborhood hood =
      SampleStaticNeighbors(static_graph_, nodes, n, &rng_);

  // Lower layer embeds targets and neighbors in one call.
  std::vector<graph::NodeId> combined = nodes;
  combined.insert(combined.end(), hood.neighbors.begin(),
                  hood.neighbors.end());
  Tensor lower = EmbedLayer(combined, layer - 1);
  std::vector<int64_t> self_rows(static_cast<size_t>(batch));
  std::vector<int64_t> nbr_rows(static_cast<size_t>(batch * n));
  for (int64_t i = 0; i < batch; ++i) self_rows[i] = i;
  for (int64_t i = 0; i < batch * n; ++i) nbr_rows[i] = batch + i;
  Tensor h_self = tensor::GatherRows(lower, self_rows);  // {B, d}
  Tensor h_nbr = tensor::GatherRows(lower, nbr_rows);    // {B*n, d}

  // Zero out padding rows (value_mask expanded across the feature dim).
  std::vector<float> vmask(static_cast<size_t>(batch * n * d));
  for (int64_t i = 0; i < batch * n; ++i) {
    std::fill_n(vmask.begin() + i * d, d,
                hood.value_mask[static_cast<size_t>(i)]);
  }
  h_nbr = tensor::Mul(h_nbr,
                      Tensor::FromVector({batch * n, d}, std::move(vmask)));

  if (kind_ == Kind::kSage) {
    // mean over valid neighbors = MeanDim1 * (n / valid).
    Tensor mean = tensor::MeanDim1(tensor::Reshape(h_nbr, {batch, n, d}));
    std::vector<float> scale(static_cast<size_t>(batch * d));
    for (int64_t b = 0; b < batch; ++b) {
      std::fill_n(scale.begin() + b * d, d,
                  hood.inv_counts[static_cast<size_t>(b)]);
    }
    mean = tensor::Mul(mean, Tensor::FromVector({batch, d}, std::move(scale)));
    Tensor h = net_.sage_layers[static_cast<size_t>(layer - 1)]->Forward(
        tensor::ConcatLastDim({h_self, mean}));
    return tensor::Relu(h);
  }

  // GAT: additive attention  e_bu = LeakyReLU(a_s·Wh_b + a_n·Wh_u).
  const auto& gat = *net_.gat_layers[static_cast<size_t>(layer - 1)];
  Tensor wh_self = gat.w.Forward(h_self);             // {B, d}
  Tensor wh_nbr = gat.w.Forward(h_nbr);               // {B*n, d}
  Tensor s_self = tensor::MatMul(wh_self, gat.a_self);      // {B, 1}
  Tensor s_nbr = tensor::MatMul(wh_nbr, gat.a_neighbor);    // {B*n, 1}
  // Tile s_self across the fanout: {B,1} x {1,n} -> {B,n}.
  Tensor tiled = tensor::MatMul(s_self, Tensor::Ones({1, n}));
  Tensor scores = tensor::LeakyRelu(
      tensor::Add(tensor::Reshape(s_nbr, {batch, n}), tiled));
  Tensor mask_t = Tensor::FromVector(
      {batch, n}, std::vector<float>(hood.attention_mask.begin(),
                                     hood.attention_mask.end()));
  Tensor alpha = tensor::SoftmaxLastDim(tensor::Add(scores, mask_t));
  // Weighted sum: {B, 1, n} x {B, n, d} -> {B, d}.
  Tensor context = tensor::Bmm(tensor::Reshape(alpha, {batch, 1, n}),
                               tensor::Reshape(wh_nbr, {batch, n, d}));
  context = tensor::Reshape(context, {batch, d});
  return tensor::Relu(tensor::Add(context, wh_self));
}

Tensor StaticGnn::EmbedNodes(const std::vector<graph::NodeId>& nodes) {
  return EmbedLayer(nodes, options_.num_layers);
}

train::TemporalModel::LinkScores StaticGnn::ScoreLinks(
    const EventBatch& batch) {
  APAN_CHECK(batch.negatives.size() == batch.size());
  EnsureGraph(*batch.dataset);
  const size_t b = batch.size();
  std::vector<graph::NodeId> nodes;
  nodes.reserve(3 * b);
  for (size_t i = 0; i < b; ++i) nodes.push_back(batch.event(i).src);
  for (size_t i = 0; i < b; ++i) nodes.push_back(batch.event(i).dst);
  for (size_t i = 0; i < b; ++i) nodes.push_back(batch.negatives[i]);
  Tensor all = EmbedNodes(nodes);
  std::vector<int64_t> src_rows(b), dst_rows(b), neg_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
    neg_rows[i] = static_cast<int64_t>(2 * b + i);
  }
  LinkScores scores;
  scores.pos_logits = net_.decoder.Forward(
      tensor::GatherRows(all, src_rows), tensor::GatherRows(all, dst_rows),
      &rng_);
  scores.neg_logits = net_.decoder.Forward(
      tensor::GatherRows(all, src_rows), tensor::GatherRows(all, neg_rows),
      &rng_);
  return scores;
}

train::TemporalModel::EndpointEmbeddings StaticGnn::EmbedEndpoints(
    const EventBatch& batch) {
  EnsureGraph(*batch.dataset);
  const size_t b = batch.size();
  std::vector<graph::NodeId> nodes;
  nodes.reserve(2 * b);
  for (size_t i = 0; i < b; ++i) nodes.push_back(batch.event(i).src);
  for (size_t i = 0; i < b; ++i) nodes.push_back(batch.event(i).dst);
  Tensor all = EmbedNodes(nodes);
  std::vector<int64_t> src_rows(b), dst_rows(b);
  for (size_t i = 0; i < b; ++i) {
    src_rows[i] = static_cast<int64_t>(i);
    dst_rows[i] = static_cast<int64_t>(b + i);
  }
  EndpointEmbeddings out;
  out.z_src = tensor::GatherRows(all, src_rows);
  out.z_dst = tensor::GatherRows(all, dst_rows);
  return out;
}

Status StaticGnn::Consume(const EventBatch& batch) {
  EnsureGraph(*batch.dataset);
  return Status::OK();  // static model: no streaming state
}

}  // namespace baselines
}  // namespace apan
