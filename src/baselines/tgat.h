// TGAT baseline (Xu et al., ICLR 2020): synchronous CTDG model — temporal
// attention over sampled neighbors with a Bochner time encoding and no
// node memory. The k-hop neighbor queries sit on the inference path, which
// is exactly the latency APAN's asynchronous design removes.

#ifndef APAN_BASELINES_TGAT_H_
#define APAN_BASELINES_TGAT_H_

#include <string>

#include "baselines/temporal_attention.h"
#include "core/decoder.h"
#include "train/temporal_model.h"

namespace apan {
namespace baselines {

/// \brief TGAT with 1 or 2 attention layers.
class Tgat : public train::TemporalModel {
 public:
  struct Options {
    int64_t num_nodes = 0;
    int64_t dim = 0;       ///< Embedding dim = edge feature dim.
    int64_t num_heads = 2;
    int64_t num_layers = 2;
    int64_t fanout = 10;
    int64_t mlp_hidden = 80;
    float dropout = 0.1f;
  };

  /// `features` must outlive the model. `name` defaults to
  /// "TGAT-<layers>layer".
  Tgat(const Options& options, const graph::EdgeFeatureStore* features,
       uint64_t seed, std::string name = "");

  std::string name() const override { return name_; }
  int64_t embedding_dim() const override { return options_.dim; }
  LinkScores ScoreLinks(const train::EventBatch& batch) override;
  EndpointEmbeddings EmbedEndpoints(const train::EventBatch& batch) override;
  Status Consume(const train::EventBatch& batch) override;
  void ResetState() override;
  std::vector<tensor::Tensor> Parameters() override {
    return net_.Parameters();
  }
  void SetTraining(bool training) override { net_.SetTraining(training); }
  int64_t SyncPathGraphQueries() const override { return sync_queries_; }

 private:
  // Module plumbing lives in a private aggregate so the TemporalModel
  // interface stays free of nn::Module.
  class Net : public nn::Module {
   public:
    Net(const Options& o, Rng* rng)
        : stack({.dim = o.dim,
                 .edge_dim = o.dim,
                 .time_dim = o.dim,
                 .num_heads = o.num_heads,
                 .num_layers = o.num_layers,
                 .fanout = o.fanout,
                 .mlp_hidden = o.mlp_hidden,
                 .dropout = o.dropout},
                rng),
          decoder(o.dim, o.mlp_hidden, rng) {
      RegisterChild(&stack);
      RegisterChild(&decoder);
    }
    TemporalAttentionStack stack;
    core::LinkDecoder decoder;
  };

  /// Embeds (node, time) targets with layer-0 = zeros (TGAT has no memory
  /// and the datasets carry no node features). Counts sync-path queries.
  tensor::Tensor EmbedTargets(const std::vector<TimedNode>& targets);

  std::string name_;
  Options options_;
  const graph::EdgeFeatureStore* features_;
  Rng rng_;
  graph::TemporalGraph graph_;
  Net net_;
  int64_t sync_queries_ = 0;
};

}  // namespace baselines
}  // namespace apan

#endif  // APAN_BASELINES_TGAT_H_
