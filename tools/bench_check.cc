// bench_check: validates the bench JSONs CI tracks across PRs —
// BENCH_fig10.json (bench/fig10_sharded_throughput) and BENCH_fig7.json
// (bench/fig7_training_time), dispatched on the top-level "figure"
// field. CI's bench-smoke job runs it against both the freshly generated
// JSON (schema only — a loaded CI machine's timing numbers are noise)
// and the committed file (full check), so a bench refactor that drops a
// field, emits NaN, or ships a regression fails the build instead of
// silently rotting the committed trajectory.
//
//   ./build/tools/bench_check BENCH_fig10.json
//   ./build/tools/bench_check --schema-only /tmp/BENCH_fig10.json
//   ./build/tools/bench_check --min-scale=0.35 BENCH_fig10.json
//   ./build/tools/bench_check --min-ap=0.65 BENCH_fig7.json
//
// fig7 checks: every model row carries a name, a finite positive
// seconds_per_epoch_mean and steps_per_sec, and a test_ap in [0, 1].
// APAN rows are additionally gated on arena_plan_misses == 0 in BOTH
// modes (the zero-alloc steady-state claim: APAN's training step is
// structurally constant, so the graph-planned arena must replay it
// without heap fallbacks — a structural property, not a timing, hence
// immune to CI noise). Full mode adds test_ap >= --min-ap (default
// 0.65 — AP is seed- and numerics-sensitive at 3 epochs, so the floor
// catches a broken backward pass, not run-to-run jitter).
//
// fig10 checks:
// Schema checks (always):
//   1. the file parses as well-formed JSON (obs::ValidateJson);
//   2. a non-empty "rows" array where every row carries a "partition"
//      string and a present, finite, positive "events_per_sec";
//   3. a "memory" array whose entries carry "partition" and a per-shard
//      max >= min state-slice split — one measured row per
//      (shards, partition) configuration, never a reused one;
//   4. a "recovery" array (the checkpoint/rejoin cycle) whose rows carry
//      finite, non-negative snapshot_write_ms / restore_replay_ms, a
//      positive events_replayed, and events_shed == 0 — the bench never
//      takes a shard down, so shed events during rejoin are lost traffic
//      (structural, so it holds even on a loaded box).
//
// Scaling checks (skipped under --schema-only):
//   5. within each (transport, partition) group, every multi-shard row
//      keeps events_per_sec >= --min-scale x the 1-shard row of the same
//      transport. The default floor (0.25) is deliberately a collapse
//      detector, not a speedup gate: shard workers are threads, so on a
//      single-core host the best possible curve is FLAT (parity with one
//      shard, and the 8-shard uds row pays 8x the per-frame syscall tax
//      with zero hardware to hide it behind) — positive scaling is
//      physically unavailable there. CI boxes with real parallelism can
//      tighten the floor via the flag.
//   6. at every (shards > 1, transport), the locality partition's
//      cross_shard_pct must not exceed the hash partition's — the one
//      scaling property that holds on any hardware, since it counts mail
//      routing, not wall time.
//
// Exit 0 on success; 1 with a diagnostic per violation on stderr.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "tools/tool_util.h"

namespace {

/// Returns the substring covering the balanced [...] array that follows
/// `"key": ` in `text`, without the brackets. Empty when absent. The
/// input is machine-written single-object JSON (bench::JsonWriter), so
/// strings never contain brackets and flat scanning is sufficient —
/// ValidateJson has already vouched for well-formedness.
std::string ExtractArray(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": [";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return "";
  size_t pos = at + needle.size();
  int depth = 1;
  const size_t start = pos;
  while (pos < text.size() && depth > 0) {
    if (text[pos] == '[') ++depth;
    if (text[pos] == ']') --depth;
    ++pos;
  }
  return text.substr(start, pos - start - 1);
}

/// Splits a flat array body into its top-level {...} object substrings.
std::vector<std::string> SplitObjects(const std::string& array_body) {
  std::vector<std::string> objects;
  size_t pos = 0;
  while (pos < array_body.size()) {
    if (array_body[pos] != '{') {
      ++pos;
      continue;
    }
    int depth = 0;
    const size_t start = pos;
    while (pos < array_body.size()) {
      if (array_body[pos] == '{') ++depth;
      if (array_body[pos] == '}') --depth;
      ++pos;
      if (depth == 0) break;
    }
    objects.push_back(array_body.substr(start, pos - start));
  }
  return objects;
}

/// `"field": "value"` → value; empty string when the field is absent.
std::string StringField(const std::string& object, const std::string& field) {
  const std::string needle = "\"" + field + "\": \"";
  const size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = object.find('"', start);
  return end == std::string::npos ? "" : object.substr(start, end - start);
}

/// `"field": <number>` → value. `found` reports presence; NaN and inf in
/// the text (which ValidateJson would have rejected anyway) come back
/// non-finite and fail the finiteness check downstream.
double NumberField(const std::string& object, const std::string& field,
                   bool* found) {
  const std::string needle = "\"" + field + "\": ";
  const size_t at = object.find(needle);
  if (at == std::string::npos) {
    *found = false;
    return 0.0;
  }
  *found = true;
  return std::strtod(object.c_str() + at + needle.size(), nullptr);
}

struct Row {
  std::string engine;
  std::string transport;
  std::string partition;
  int shards = 0;
  double events_per_sec = 0.0;
  double cross_shard_pct = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const apan::tools::ArgParser args(argc, argv);
  if (args.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: %s [--schema-only] [--min-scale=<ratio>] "
                 "[--min-ap=<ap>] <BENCH_fig10.json|BENCH_fig7.json>\n",
                 args.program().c_str());
    return 1;
  }
  const bool schema_only = args.HasFlag("schema-only");
  const double min_scale =
      std::strtod(args.FlagValue("min-scale", "0.25").c_str(), nullptr);
  const std::string& path = args.positional()[0];
  std::string text;
  if (!apan::tools::SlurpFile(path, &text)) return 1;

  std::string error;
  if (!apan::obs::ValidateJson(text, &error)) {
    std::fprintf(stderr, "bench_check: %s is not well-formed JSON: %s\n",
                 path.c_str(), error.c_str());
    return 1;
  }

  int violations = 0;
  const auto fail = [&](const char* fmt, auto... rest) {
    std::fprintf(stderr, "bench_check: ");
    std::fprintf(stderr, fmt, rest...);
    std::fprintf(stderr, "\n");
    ++violations;
  };

  // ---- fig7: training-speed trajectory -------------------------------------
  if (StringField(text, "figure") == "fig7_training_time") {
    const double min_ap =
        std::strtod(args.FlagValue("min-ap", "0.65").c_str(), nullptr);
    const std::vector<std::string> model_objects =
        SplitObjects(ExtractArray(text, "models"));
    if (model_objects.empty()) {
      fail("%s has no \"models\" array (or it is empty)", path.c_str());
    }
    for (size_t i = 0; i < model_objects.size(); ++i) {
      const std::string& object = model_objects[i];
      const std::string name = StringField(object, "name");
      if (name.empty()) fail("model row %zu lacks \"name\"", i);
      bool found = false;
      const double s_epoch =
          NumberField(object, "seconds_per_epoch_mean", &found);
      if (!found) {
        fail("model %s lacks \"seconds_per_epoch_mean\"", name.c_str());
      } else if (!std::isfinite(s_epoch) || s_epoch <= 0.0) {
        fail("model %s seconds_per_epoch_mean = %g is not finite and "
             "positive",
             name.c_str(), s_epoch);
      }
      const double steps = NumberField(object, "steps_per_sec", &found);
      if (!found) {
        fail("model %s lacks \"steps_per_sec\"", name.c_str());
      } else if (!std::isfinite(steps) || steps <= 0.0) {
        fail("model %s steps_per_sec = %g is not finite and positive",
             name.c_str(), steps);
      }
      const double ap = NumberField(object, "test_ap", &found);
      if (!found) {
        fail("model %s lacks \"test_ap\"", name.c_str());
      } else if (!(ap >= 0.0 && ap <= 1.0)) {
        fail("model %s test_ap = %g is outside [0, 1]", name.c_str(), ap);
      }
      if (name.rfind("APAN", 0) == 0) {
        if (!schema_only && ap < min_ap) {
          fail("%s test_ap %.4f fell below the --min-ap floor %.2f — the "
               "fast backward pass must not cost accuracy",
               name.c_str(), ap, min_ap);
        }
        // Plan misses are machine-independent (a structural property of
        // the recorded step, not a timing), so this gate applies even
        // under --schema-only — a loaded CI box can't excuse them.
        bool has_misses = false;
        const double misses =
            NumberField(object, "arena_plan_misses", &has_misses);
        if (!has_misses || misses != 0.0) {
          fail("%s arena_plan_misses = %g — APAN's training step is "
               "structurally constant, so the planned arena must replay "
               "it without heap fallbacks",
               name.c_str(), has_misses ? misses : -1.0);
        }
      }
    }
    if (violations > 0) {
      std::fprintf(stderr, "bench_check: %s FAILED (%d violation%s)\n",
                   path.c_str(), violations, violations == 1 ? "" : "s");
      return 1;
    }
    std::printf("bench_check: %s OK (%zu models%s)\n", path.c_str(),
                model_objects.size(), schema_only ? ", schema only" : "");
    return 0;
  }

  // ---- rows: schema --------------------------------------------------------
  const std::vector<std::string> row_objects =
      SplitObjects(ExtractArray(text, "rows"));
  if (row_objects.empty()) {
    fail("%s has no \"rows\" array (or it is empty)", path.c_str());
  }
  std::vector<Row> rows;
  for (size_t i = 0; i < row_objects.size(); ++i) {
    const std::string& object = row_objects[i];
    Row row;
    row.engine = StringField(object, "engine");
    row.transport = StringField(object, "transport");
    row.partition = StringField(object, "partition");
    if (row.partition.empty()) {
      fail("row %zu lacks a \"partition\" field", i);
    }
    bool found = false;
    row.events_per_sec = NumberField(object, "events_per_sec", &found);
    if (!found) {
      fail("row %zu lacks \"events_per_sec\"", i);
    } else if (!std::isfinite(row.events_per_sec) ||
               row.events_per_sec <= 0.0) {
      fail("row %zu events_per_sec = %g is not finite and positive", i,
           row.events_per_sec);
    }
    row.shards =
        static_cast<int>(NumberField(object, "shards", &found));
    row.cross_shard_pct = NumberField(object, "cross_shard_pct", &found);
    rows.push_back(row);
  }

  // ---- memory: one measured split per (shards, partition) ------------------
  const std::vector<std::string> memory_objects =
      SplitObjects(ExtractArray(text, "memory"));
  if (memory_objects.empty()) {
    fail("%s has no \"memory\" array (or it is empty)", path.c_str());
  }
  std::map<std::pair<int, std::string>, int> memory_seen;
  for (size_t i = 0; i < memory_objects.size(); ++i) {
    const std::string& object = memory_objects[i];
    const std::string partition = StringField(object, "partition");
    if (partition.empty()) {
      fail("memory row %zu lacks a \"partition\" field", i);
      continue;
    }
    bool has_shards = false, has_max = false, has_min = false;
    const int shards =
        static_cast<int>(NumberField(object, "shards", &has_shards));
    const double max_shard =
        NumberField(object, "state_bytes_max_shard", &has_max);
    const double min_shard =
        NumberField(object, "state_bytes_min_shard", &has_min);
    if (!has_shards || !has_max || !has_min) {
      fail("memory row %zu lacks shards/state_bytes_{max,min}_shard", i);
      continue;
    }
    if (max_shard < min_shard || min_shard <= 0.0) {
      fail("memory row %zu per-shard split max %g / min %g is not a "
           "measurement",
           i, max_shard, min_shard);
    }
    if (++memory_seen[{shards, partition}] > 1) {
      fail("memory row %zu duplicates configuration (%d shards, %s) — "
           "rows must be measured per configuration, not reused",
           i, shards, partition.c_str());
    }
  }

  // ---- recovery: checkpoint + rejoin cost ----------------------------------
  // Schema tier (runs on fresh JSON too): every recovery row carries
  // finite, non-negative snapshot/rejoin timings and a positive replayed
  // count. events_shed is a structural property, not a timing: the bench's
  // crash/recovery cycle never takes a shard down, so anything shed during
  // rejoin is lost traffic — it must be exactly 0 even on a loaded box.
  const std::vector<std::string> recovery_objects =
      SplitObjects(ExtractArray(text, "recovery"));
  if (recovery_objects.empty()) {
    fail("%s has no \"recovery\" array (or it is empty)", path.c_str());
  }
  for (size_t i = 0; i < recovery_objects.size(); ++i) {
    const std::string& object = recovery_objects[i];
    if (StringField(object, "transport").empty()) {
      fail("recovery row %zu lacks a \"transport\" field", i);
    }
    for (const char* field : {"snapshot_write_ms", "restore_replay_ms"}) {
      bool found = false;
      const double ms = NumberField(object, field, &found);
      if (!found) {
        fail("recovery row %zu lacks \"%s\"", i, field);
      } else if (!std::isfinite(ms) || ms < 0.0) {
        fail("recovery row %zu %s = %g is not finite and non-negative", i,
             field, ms);
      }
    }
    bool found = false;
    const double replayed = NumberField(object, "events_replayed", &found);
    if (!found || !std::isfinite(replayed) || replayed <= 0.0) {
      fail("recovery row %zu events_replayed = %g is not a measurement", i,
           found ? replayed : -1.0);
    }
    const double shed = NumberField(object, "events_shed", &found);
    if (!found || shed != 0.0) {
      fail("recovery row %zu events_shed = %g — no shard is down in the "
           "bench's crash/recovery cycle, so shed events are lost traffic",
           i, found ? shed : -1.0);
    }
  }

  // ---- scaling -------------------------------------------------------------
  if (!schema_only) {
    // 1-shard reference per transport (1-shard rows are partition "hash":
    // every partitioner coincides there).
    std::map<std::string, double> one_shard_eps;
    for (const Row& row : rows) {
      if (row.engine == "ShardedEngine" && row.shards == 1) {
        one_shard_eps[row.transport] = row.events_per_sec;
      }
    }
    for (const Row& row : rows) {
      if (row.engine != "ShardedEngine" || row.shards <= 1) continue;
      const auto base = one_shard_eps.find(row.transport);
      if (base == one_shard_eps.end()) {
        fail("no 1-shard row for transport %s to scale against",
             row.transport.c_str());
        break;
      }
      const double ratio = row.events_per_sec / base->second;
      if (ratio < min_scale) {
        fail("%s/%s x%d events/s collapsed to %.2fx of the 1-shard row "
             "(floor %.2fx)",
             row.transport.c_str(), row.partition.c_str(), row.shards,
             ratio, min_scale);
      }
    }
    // Locality must never route MORE mail cross-shard than the hash.
    for (const Row& row : rows) {
      if (row.partition != "locality") continue;
      for (const Row& hash_row : rows) {
        if (hash_row.partition == "hash" &&
            hash_row.transport == row.transport &&
            hash_row.shards == row.shards &&
            row.cross_shard_pct > hash_row.cross_shard_pct) {
          fail("%s x%d: locality cross_shard_pct %.1f exceeds hash %.1f",
               row.transport.c_str(), row.shards, row.cross_shard_pct,
               hash_row.cross_shard_pct);
        }
      }
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "bench_check: %s FAILED (%d violation%s)\n",
                 path.c_str(), violations, violations == 1 ? "" : "s");
    return 1;
  }
  std::printf("bench_check: %s OK (%zu rows, %zu memory rows%s)\n",
              path.c_str(), rows.size(), memory_objects.size(),
              schema_only ? ", schema only" : "");
  return 0;
}
