// Shared plumbing for the repo's small CLI tools (trace_check, apan_lint):
// flag parsing and whole-file slurping. Header-only on purpose — the tools
// directory builds each .cc into its own binary and has no library target.

#ifndef APAN_TOOLS_TOOL_UTIL_H_
#define APAN_TOOLS_TOOL_UTIL_H_

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace apan {
namespace tools {

/// Minimal argv parser: `--name=value` and bare `--name` become flags,
/// everything else is positional, in order. No combining, no `-x`
/// shorthands — these are two-flag CLIs, not a framework.
class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          flags_.emplace_back(arg.substr(2), "");
        } else {
          flags_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool HasFlag(const std::string& name) const {
    for (const auto& [k, v] : flags_) {
      if (k == name) return true;
    }
    return false;
  }

  /// Value of `--name=value`, or `fallback` when absent / value-less.
  std::string FlagValue(const std::string& name,
                        const std::string& fallback = "") const {
    for (const auto& [k, v] : flags_) {
      if (k == name) return v.empty() ? fallback : v;
    }
    return fallback;
  }

 private:
  std::string program_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> flags_;
};

/// Reads a whole file into `*out`. Returns false (and prints a diagnostic
/// naming `path` to stderr) on open failure; an empty file succeeds with
/// an empty string — callers that require content check for themselves.
inline bool SlurpFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Splits text into lines (no trailing '\n' in elements). A final line
/// without a newline is kept.
inline std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace tools
}  // namespace apan

#endif  // APAN_TOOLS_TOOL_UTIL_H_
