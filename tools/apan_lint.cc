// apan_lint: repo-specific invariants that neither the compiler nor
// clang-tidy can express, run as a ctest (label `lint`) so they gate every
// local tier-1 run, not just CI:
//
//   1. FMA-free SERVE kernels. src/tensor/kernels.cc promises bitwise
//      scalar/AVX2/NEON parity, which holds only if the compiler never
//      contracts mul+add into a fused multiply-add (contraction rounds
//      once, separate ops round twice). CMake pins -ffp-contract=off on
//      that TU; this check disassembles the built object and fails on any
//      FMA mnemonic (vfmadd*/vfmsub*/vfnmadd*/vfnmsub* on x86,
//      fmla*/fmls* on AArch64), so a dropped flag fails the test suite
//      instead of silently breaking cross-ISA parity. The ban is scoped
//      to that one object: the TRAINING kernels
//      (src/tensor/kernels_backward.cc) run under the per-ISA contract
//      (kernels.h) where contraction is legal and wanted — the
//      --training-object check disassembles that object the same way but
//      only REPORTS its FMA count, passing either way, so CI proves the
//      scoping in both directions (serve object must be clean, training
//      object may contract).
//   2. Relaxed-only obs hot path. src/obs/ is scraped under load; its
//      atomics are documented as plain counters with no ordering
//      obligations. Any non-relaxed std::memory_order_* in src/obs/ fails
//      — a stronger order there is either a bug or a design change that
//      must update docs/static-analysis.md first.
//   3. No ambient nondeterminism in the serve/core planes. Replayable
//      serving (DESIGN.md: same stream + same seed => same scores) bans
//      std::rand/srand, time(nullptr)/time(NULL), and std::random_device
//      from src/serve/ and src/core/; randomness goes through util::Rng
//      with an explicit seed.
//
// Suppressions: a line containing `lint:allow(memory-order)` or
// `lint:allow(nondeterminism)` is skipped by the respective scan. Each
// suppression must carry a justifying comment; docs/static-analysis.md
// documents the contract. The FMA check has no suppression — parity is
// all-or-nothing.
//
//   ./build/tools/apan_lint --src=<repo>/src --build-dir=<build dir>
//       [--kernel-object=<path>]    explicit serve object, skips the search
//       [--training-object=<path>]  explicit training object, skips the search
//       [--skip-fma]                no built object available (docs builds)
//
// Exit 0 when all checks pass; 1 with per-finding diagnostics otherwise.

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/tool_util.h"

namespace fs = std::filesystem;

namespace {

using apan::tools::SlurpFile;
using apan::tools::SplitLines;

// ---- subprocess ------------------------------------------------------------

/// Runs `cmd` through the shell, captures stdout (stderr is discarded).
/// Returns false if the command could not run or exited non-zero.
bool RunCommand(const std::string& cmd, std::string* out) {
  out->clear();
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return false;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out->append(buf.data(), n);
  }
  return pclose(pipe) == 0;
}

// ---- check 1: FMA mnemonics in the kernel object ---------------------------

bool IsFmaMnemonic(const std::string& token) {
  for (const char* prefix :
       {"vfmadd", "vfmsub", "vfnmadd", "vfnmsub", "fmla", "fmls"}) {
    if (token.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Finds a built object by exact filename under `build_dir` (any
/// configuration layout — CMake nests it as
/// .../apan_lib.dir/src/tensor/<name>). The exact-name match is what
/// scopes the FMA ban: kernels.cc.o never matches kernels_backward.cc.o.
std::string FindObject(const std::string& build_dir,
                       const std::string& filename) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(build_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().filename() == filename) {
      return it->path().string();
    }
  }
  return "";
}

/// Shared disassembly pass: counts instruction lines and FMA mnemonics.
/// False only when no disassembler worked or the object looks empty.
bool CountFma(const std::string& object_path, int64_t* instructions,
              int64_t* findings, std::string* used,
              bool print_findings) {
  std::string disasm;
  bool ran = false;
  for (const char* tool : {"llvm-objdump", "objdump"}) {
    if (RunCommand(std::string(tool) + " -d --no-show-raw-insn " +
                       object_path,
                   &disasm) &&
        disasm.size() > 1024) {
      ran = true;
      *used = tool;
      break;
    }
  }
  if (!ran) {
    std::fprintf(stderr,
                 "apan_lint: no working disassembler (tried llvm-objdump, "
                 "objdump) for %s\n",
                 object_path.c_str());
    return false;
  }

  *instructions = 0;
  *findings = 0;
  for (const std::string& line : SplitLines(disasm)) {
    // Instruction lines look like "  2f:\tvmulps %ymm…"; count them so an
    // empty or non-code disassembly can't vacuously pass.
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;
    ++*instructions;
    // Mnemonic = first whitespace-delimited token after the tab.
    size_t start = line.find_first_not_of(" \t", tab);
    if (start == std::string::npos) continue;
    size_t stop = line.find_first_of(" \t", start);
    const std::string mnemonic =
        line.substr(start, stop == std::string::npos ? stop : stop - start);
    if (IsFmaMnemonic(mnemonic)) {
      ++*findings;
      if (print_findings && *findings <= 10) {
        std::fprintf(stderr, "apan_lint: FMA in %s: %s\n",
                     object_path.c_str(), line.c_str());
      }
    }
  }
  if (*instructions < 100) {
    std::fprintf(stderr,
                 "apan_lint: disassembly of %s has only %lld instruction "
                 "lines — wrong file?\n",
                 object_path.c_str(), static_cast<long long>(*instructions));
    return false;
  }
  return true;
}

bool CheckNoFma(const std::string& object_path) {
  int64_t instructions = 0, findings = 0;
  std::string used;
  if (!CountFma(object_path, &instructions, &findings, &used,
                /*print_findings=*/true)) {
    return false;
  }
  if (findings > 0) {
    std::fprintf(stderr,
                 "apan_lint: %lld FMA instruction(s) in %s — kernels.cc must "
                 "build with -ffp-contract=off (see CMakeLists.txt) to keep "
                 "bitwise scalar/SIMD parity\n",
                 static_cast<long long>(findings), object_path.c_str());
    return false;
  }
  std::printf("apan_lint: FMA check OK (%s, %lld instructions, via %s)\n",
              object_path.c_str(), static_cast<long long>(instructions),
              used.c_str());
  return true;
}

/// The training object is EXEMPT from the FMA ban (per-ISA contract,
/// kernels.h): report the count either way so the log shows the tiers
/// diverging exactly where they are allowed to. Fails only when the
/// object cannot be disassembled at all.
bool ReportTrainingObjectFma(const std::string& object_path) {
  int64_t instructions = 0, findings = 0;
  std::string used;
  if (!CountFma(object_path, &instructions, &findings, &used,
                /*print_findings=*/false)) {
    return false;
  }
  std::printf(
      "apan_lint: training-object check OK (%s, %lld FMA over %lld "
      "instructions, via %s — contraction is legal in training kernels)\n",
      object_path.c_str(), static_cast<long long>(findings),
      static_cast<long long>(instructions), used.c_str());
  return true;
}

// ---- source scans ----------------------------------------------------------

std::vector<std::string> SourceFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(it->path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool CheckRelaxedOnlyMemoryOrders(const std::string& obs_dir) {
  const std::vector<std::string> files = SourceFiles(obs_dir);
  if (files.empty()) {
    std::fprintf(stderr, "apan_lint: no sources under %s\n", obs_dir.c_str());
    return false;
  }
  int64_t findings = 0;
  for (const std::string& file : files) {
    std::string text;
    if (!SlurpFile(file, &text)) return false;
    int lineno = 0;
    for (const std::string& line : SplitLines(text)) {
      ++lineno;
      if (line.find("lint:allow(memory-order)") != std::string::npos) {
        continue;
      }
      size_t pos = 0;
      static const std::string kNeedle = "memory_order_";
      while ((pos = line.find(kNeedle, pos)) != std::string::npos) {
        const size_t order_start = pos + kNeedle.size();
        size_t order_end = order_start;
        while (order_end < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[order_end])) ||
                line[order_end] == '_')) {
          ++order_end;
        }
        const std::string order =
            line.substr(order_start, order_end - order_start);
        if (order != "relaxed") {
          ++findings;
          std::fprintf(stderr,
                       "apan_lint: %s:%d: memory_order_%s in src/obs/ — the "
                       "obs hot path is relaxed-only "
                       "(docs/static-analysis.md)\n",
                       file.c_str(), lineno, order.c_str());
        }
        pos = order_end;
      }
    }
  }
  if (findings > 0) return false;
  std::printf("apan_lint: memory-order check OK (%zu files under %s)\n",
              files.size(), obs_dir.c_str());
  return true;
}

bool CheckNoNondeterminism(const std::vector<std::string>& dirs) {
  static const char* kPatterns[] = {"std::rand", "std::srand",
                                    "time(nullptr)", "time(NULL)",
                                    "std::random_device"};
  int64_t findings = 0;
  size_t total_files = 0;
  for (const std::string& dir : dirs) {
    const std::vector<std::string> files = SourceFiles(dir);
    if (files.empty()) {
      std::fprintf(stderr, "apan_lint: no sources under %s\n", dir.c_str());
      return false;
    }
    total_files += files.size();
    for (const std::string& file : files) {
      std::string text;
      if (!SlurpFile(file, &text)) return false;
      int lineno = 0;
      for (const std::string& line : SplitLines(text)) {
        ++lineno;
        if (line.find("lint:allow(nondeterminism)") != std::string::npos) {
          continue;
        }
        for (const char* pattern : kPatterns) {
          if (line.find(pattern) != std::string::npos) {
            ++findings;
            std::fprintf(stderr,
                         "apan_lint: %s:%d: %s — serve/core must stay "
                         "replayable; use util::Rng with an explicit seed "
                         "(docs/static-analysis.md)\n",
                         file.c_str(), lineno, pattern);
          }
        }
      }
    }
  }
  if (findings > 0) return false;
  std::printf("apan_lint: nondeterminism check OK (%zu files)\n", total_files);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const apan::tools::ArgParser args(argc, argv);
  const std::string src = args.FlagValue("src");
  if (src.empty()) {
    std::fprintf(stderr,
                 "usage: %s --src=<repo>/src --build-dir=<build dir> "
                 "[--kernel-object=<path>] [--training-object=<path>] "
                 "[--skip-fma]\n",
                 args.program().c_str());
    return 1;
  }

  bool ok = true;

  if (args.HasFlag("skip-fma")) {
    std::printf("apan_lint: FMA check skipped (--skip-fma)\n");
  } else {
    const std::string build_dir = args.FlagValue("build-dir");
    std::string object = args.FlagValue("kernel-object");
    if (object.empty()) {
      if (build_dir.empty()) {
        std::fprintf(stderr,
                     "apan_lint: need --build-dir or --kernel-object for the "
                     "FMA check (or --skip-fma)\n");
        return 1;
      }
      object = FindObject(build_dir, "kernels.cc.o");
      if (object.empty()) {
        std::fprintf(stderr,
                     "apan_lint: no kernels.cc.o under %s — build apan_lib "
                     "first\n",
                     build_dir.c_str());
        return 1;
      }
    }
    ok = CheckNoFma(object) && ok;

    std::string training = args.FlagValue("training-object");
    if (training.empty() && !build_dir.empty()) {
      training = FindObject(build_dir, "kernels_backward.cc.o");
    }
    if (training.empty()) {
      std::printf(
          "apan_lint: training-object check skipped (no "
          "kernels_backward.cc.o found)\n");
    } else {
      ok = ReportTrainingObjectFma(training) && ok;
    }
  }

  ok = CheckRelaxedOnlyMemoryOrders(src + "/obs") && ok;
  ok = CheckNoNondeterminism({src + "/serve", src + "/core"}) && ok;

  if (!ok) return 1;
  std::printf("apan_lint: all checks passed\n");
  return 0;
}
