// trace_check: validates a Chrome trace_event JSON file written by
// obs::TraceRecorder::WriteChromeTrace (or any tool claiming the same
// format). CI's bench-smoke job runs it against the fig10 --trace output
// so a malformed trace fails the build instead of failing silently in
// chrome://tracing.
//
//   ./build/tools/trace_check fig10_trace.json
//
// Checks, in order:
//   1. the file parses as well-formed JSON (obs::ValidateJson);
//   2. it contains a "traceEvents" array;
//   3. at least one complete event is present, with the trace_event
//      fields the viewers require ("name", "ph", "ts").
// Exit 0 on success; 1 with a diagnostic on stderr otherwise.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.h"

namespace {

bool Contains(const std::string& text, const char* needle) {
  return text.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 1;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) {
    std::fprintf(stderr, "trace_check: %s is empty\n", argv[1]);
    return 1;
  }

  std::string error;
  if (!apan::obs::ValidateJson(text, &error)) {
    std::fprintf(stderr, "trace_check: %s is not well-formed JSON: %s\n",
                 argv[1], error.c_str());
    return 1;
  }
  if (!Contains(text, "\"traceEvents\"")) {
    std::fprintf(stderr, "trace_check: %s lacks a \"traceEvents\" array\n",
                 argv[1]);
    return 1;
  }
  for (const char* field : {"\"name\"", "\"ph\"", "\"ts\""}) {
    if (!Contains(text, field)) {
      std::fprintf(stderr,
                   "trace_check: %s has no event carrying %s — empty trace?\n",
                   argv[1], field);
      return 1;
    }
  }
  std::printf("trace_check: %s OK (%zu bytes)\n", argv[1], text.size());
  return 0;
}
