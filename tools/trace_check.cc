// trace_check: validates a Chrome trace_event JSON file written by
// obs::TraceRecorder::WriteChromeTrace (or any tool claiming the same
// format). CI's bench-smoke job runs it against the fig10 --trace output
// so a malformed trace fails the build instead of failing silently in
// chrome://tracing.
//
//   ./build/tools/trace_check fig10_trace.json
//
// Checks, in order:
//   1. the file parses as well-formed JSON (obs::ValidateJson);
//   2. it contains a "traceEvents" array;
//   3. at least one complete event is present, with the trace_event
//      fields the viewers require ("name", "ph", "ts").
// Exit 0 on success; 1 with a diagnostic on stderr otherwise.

#include <cstdio>
#include <string>

#include "obs/trace.h"
#include "tools/tool_util.h"

namespace {

bool Contains(const std::string& text, const char* needle) {
  return text.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const apan::tools::ArgParser args(argc, argv);
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", args.program().c_str());
    return 1;
  }
  const std::string& path = args.positional()[0];
  std::string text;
  if (!apan::tools::SlurpFile(path, &text)) return 1;
  if (text.empty()) {
    std::fprintf(stderr, "trace_check: %s is empty\n", path.c_str());
    return 1;
  }

  std::string error;
  if (!apan::obs::ValidateJson(text, &error)) {
    std::fprintf(stderr, "trace_check: %s is not well-formed JSON: %s\n",
                 path.c_str(), error.c_str());
    return 1;
  }
  if (!Contains(text, "\"traceEvents\"")) {
    std::fprintf(stderr, "trace_check: %s lacks a \"traceEvents\" array\n",
                 path.c_str());
    return 1;
  }
  for (const char* field : {"\"name\"", "\"ph\"", "\"ts\""}) {
    if (!Contains(text, field)) {
      std::fprintf(stderr,
                   "trace_check: %s has no event carrying %s — empty trace?\n",
                   path.c_str(), field);
      return 1;
    }
  }
  std::printf("trace_check: %s OK (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}
